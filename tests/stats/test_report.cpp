#include "stats/report.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace reco {
namespace {

TEST(Report, RendersHeaderAndRows) {
  ReportTable t("Fig. X: example");
  t.set_header({"density", "Reco-Sin", "Solstice"});
  t.add_row({"sparse", "12.3", "31.8"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Fig. X: example"), std::string::npos);
  EXPECT_NE(s.find("density"), std::string::npos);
  EXPECT_NE(s.find("31.8"), std::string::npos);
}

TEST(Report, ColumnsAreAligned) {
  ReportTable t("t");
  t.set_header({"a", "bbbb"});
  t.add_row({"xxxxxx", "1"});
  const std::string s = t.to_string();
  // Both data rows should have the same line length as the header line.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[1].size(), lines[2].size());
}

TEST(Report, MismatchedRowThrows) {
  ReportTable t("t");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, SaveCsvRoundTrip) {
  ReportTable t("csv test");
  t.set_header({"a", "b"});
  t.add_row({"1", "2,x"});
  const std::string path = ::testing::TempDir() + "/reco_report_test.csv";
  t.save_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# csv test");
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"2,x\"");
}

TEST(Report, SaveCsvCreatesMissingParentDirectories) {
  ReportTable t("mkdir test");
  t.set_header({"a"});
  t.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/reco_report_mkdir/sub/x.csv";
  t.save_csv(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

TEST(Report, SaveCsvThrowsWhenParentCannotBeCreated) {
  ReportTable t("err test");
  const std::string blocker = ::testing::TempDir() + "/reco_report_blocker";
  { std::ofstream(blocker) << "not a directory\n"; }
  EXPECT_THROW(t.save_csv(blocker + "/sub/x.csv"), std::runtime_error);
}

TEST(Report, FormatHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(2.5), "2.50x");
  EXPECT_EQ(fmt_time(50e-6), "50.0us");
  EXPECT_EQ(fmt_time(0.25), "250.00ms");
  EXPECT_EQ(fmt_time(3.5), "3.500s");
}

}  // namespace
}  // namespace reco
