#include "stats/analysis.hpp"

#include <gtest/gtest.h>

#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(Analysis, BreakdownMatchesExecutor) {
  Rng rng(401);
  const Matrix d = testing::random_demand(rng, 6, 0.6, 0.3, 4.0);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  const TimeBreakdown b = analyze_time_breakdown(s, d, delta);
  const ExecutionResult r = execute_all_stop(s, d, delta);
  EXPECT_NEAR(b.cct, r.cct, 1e-9);
  EXPECT_NEAR(b.transmission, r.transmission_time, 1e-9);
  EXPECT_NEAR(b.reconfiguration, r.reconfiguration_time, 1e-9);
  EXPECT_EQ(b.establishments, r.reconfigurations);
}

TEST(Analysis, StrandedTimeZeroForPerfectlyBalancedDemand) {
  // All entries equal: every circuit drains exactly when the hold ends.
  Matrix d(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) d.at(i, j) = 2.0;
  }
  const TimeBreakdown b = analyze_time_breakdown(reco_sin(d, 1.0), d, 1.0);
  EXPECT_NEAR(b.stranded_port_time, 0.0, 1e-9);
}

TEST(Analysis, StrandedTimePositiveForSkewedDemand) {
  const Matrix d = Matrix::from_rows({{10, 0}, {0, 1}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}, {1, 1}}, 10.0});
  const TimeBreakdown b = analyze_time_breakdown(s, d, 1.0);
  // The (1,1) circuit idles 9 units on each of its two ports.
  EXPECT_NEAR(b.stranded_port_time, 18.0, 1e-9);
}

TEST(Analysis, GanttEmptySchedule) {
  EXPECT_EQ(render_gantt({}, 2), "(empty schedule)\n");
}

TEST(Analysis, GanttMarksBusyCells) {
  const SliceSchedule sched{{0.0, 1.0, 0, 1, 3}};
  const std::string g = render_gantt(sched, 2, 10);
  // Row for ingress port 0 should be all '3's; egress port 1 likewise.
  EXPECT_NE(g.find("in  0 |3333333333|"), std::string::npos);
  EXPECT_NE(g.find("out 1 |3333333333|"), std::string::npos);
  EXPECT_NE(g.find("in  1 |..........|"), std::string::npos);
}

TEST(Analysis, GanttFlagsViolations) {
  const SliceSchedule sched{{0.0, 1.0, 0, 0, 1}, {0.5, 1.0, 0, 1, 2}};
  const std::string g = render_gantt(sched, 2, 8);
  EXPECT_NE(g.find('!'), std::string::npos);
}

}  // namespace
}  // namespace reco
