#include "stats/summary.hpp"

#include <gtest/gtest.h>

namespace reco {
namespace {

TEST(Summary, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Summary, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 95), 48.0);  // between 40 and 50
}

TEST(Summary, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({30, 10, 20}, 50), 20.0);
}

TEST(Summary, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 95), 7.0);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Summary, EmpiricalCdf) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].first, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(Summary, NormalizedRatio) {
  EXPECT_DOUBLE_EQ(normalized_ratio({4.0, 6.0}, {1.0, 1.0}), 5.0);
  EXPECT_DOUBLE_EQ(normalized_ratio({1.0}, {}), 0.0);
  EXPECT_DOUBLE_EQ(normalized_ratio({1.0}, {0.0}), 0.0);
}

TEST(Summary, ElementwiseRatioSkipsZeroDenominators) {
  const auto r = elementwise_ratio({4.0, 6.0, 8.0}, {2.0, 0.0, 4.0});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
}

}  // namespace
}  // namespace reco
