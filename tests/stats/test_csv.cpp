#include "stats/csv.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace reco {
namespace {

TEST(Csv, EscapePassthroughForPlainFields) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("3.44x"), "3.44x");
}

TEST(Csv, EscapeQuotesCommasAndNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriteRowJoinsWithCommas) {
  std::ostringstream out;
  write_csv_row(out, {"a", "b,c", "d"});
  EXPECT_EQ(out.str(), "a,\"b,c\",d\n");
}

TEST(Csv, WriteTableWithHeader) {
  std::ostringstream out;
  write_csv(out, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(out.str(), "x,y\n1,2\n3,4\n");
}

TEST(Csv, WriteTableWithoutHeader) {
  std::ostringstream out;
  write_csv(out, {}, {{"1"}});
  EXPECT_EQ(out.str(), "1\n");
}

TEST(Csv, SlicesRoundTripShape) {
  std::ostringstream out;
  write_slices_csv(out, {{0.5, 1.5, 2, 3, 7}});
  const std::string text = out.str();
  EXPECT_NE(text.find("start,end,src,dst,coflow"), std::string::npos);
  EXPECT_NE(text.find("0.5,1.5,2,3,7"), std::string::npos);
}

TEST(Csv, SaveCsvWritesFile) {
  const std::string path = ::testing::TempDir() + "/reco_csv_test.csv";
  save_csv(path, {"h"}, {{"v"}});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
}

TEST(Csv, SaveCsvCreatesMissingParentDirectories) {
  const std::string path =
      ::testing::TempDir() + "/reco_csv_mkdir/nested/deep/x.csv";
  save_csv(path, {"h"}, {{"v"}});
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

TEST(Csv, SaveCsvThrowsWhenParentCannotBeCreated) {
  // A path routed *through a regular file* can never get its parent
  // directory created; the error must name the offending path.
  const std::string blocker = ::testing::TempDir() + "/reco_csv_blocker";
  { std::ofstream(blocker) << "not a directory\n"; }
  try {
    save_csv(blocker + "/sub/x.csv", {}, {});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("reco_csv_blocker"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace reco
