// Percentile-bootstrap distribution summaries: degenerate inputs, CI
// ordering and containment, and byte-for-byte determinism — the report
// layer of the reliability campaigns must be reproducible down to the
// last CI bound.
#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace reco {
namespace {

/// Deterministic skewed samples (no RNG: the test fixture itself must not
/// depend on stream state).
std::vector<double> skewed_samples(int n) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double u = (i + 0.5) / n;
    xs.push_back(u * u * 10.0 + 0.1 * std::sin(12.9898 * i));
  }
  return xs;
}

TEST(Bootstrap, EmptyInputIsAllZero) {
  const DistributionSummary s = summarize_distribution({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_lo, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_hi, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Bootstrap, SingleSampleCollapsesEveryCIToThePoint) {
  const DistributionSummary s = summarize_distribution({2.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.mean_lo, 2.5);
  EXPECT_DOUBLE_EQ(s.mean_hi, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  EXPECT_DOUBLE_EQ(s.p50_lo, 2.5);
  EXPECT_DOUBLE_EQ(s.p50_hi, 2.5);
  EXPECT_DOUBLE_EQ(s.p99, 2.5);
  EXPECT_DOUBLE_EQ(s.p99_lo, 2.5);
  EXPECT_DOUBLE_EQ(s.p99_hi, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
}

TEST(Bootstrap, ConstantSamplesHaveZeroWidthCIs) {
  const std::vector<double> xs(40, 7.0);
  const DistributionSummary s = summarize_distribution(xs);
  EXPECT_EQ(s.count, 40u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.mean_lo, 7.0);
  EXPECT_DOUBLE_EQ(s.mean_hi, 7.0);
  EXPECT_DOUBLE_EQ(s.p50_lo, 7.0);
  EXPECT_DOUBLE_EQ(s.p50_hi, 7.0);
  EXPECT_DOUBLE_EQ(s.p99_lo, 7.0);
  EXPECT_DOUBLE_EQ(s.p99_hi, 7.0);
}

TEST(Bootstrap, CIsAreOrderedAndContained) {
  const std::vector<double> xs = skewed_samples(64);
  const DistributionSummary s = summarize_distribution(xs);
  EXPECT_EQ(s.count, 64u);
  // Point estimates respect the distribution's shape.
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p99);
  EXPECT_LE(s.p99, s.max);
  // Every CI brackets its point estimate...
  EXPECT_LE(s.mean_lo, s.mean);
  EXPECT_LE(s.mean, s.mean_hi);
  EXPECT_LE(s.p50_lo, s.p50);
  EXPECT_LE(s.p50, s.p50_hi);
  EXPECT_LE(s.p99_lo, s.p99);
  EXPECT_LE(s.p99, s.p99_hi);
  // ...and is non-degenerate for genuinely noisy data.
  EXPECT_LT(s.mean_lo, s.mean_hi);
  EXPECT_LT(s.p50_lo, s.p50_hi);
  // Resampled statistics can never leave the sample range.
  EXPECT_GE(s.mean_lo, s.min);
  EXPECT_LE(s.mean_hi, s.max);
  EXPECT_GE(s.p99_lo, s.min);
  EXPECT_LE(s.p99_hi, s.max);
}

TEST(Bootstrap, ByteIdenticalAcrossCalls) {
  const std::vector<double> xs = skewed_samples(48);
  const DistributionSummary a = summarize_distribution(xs);
  const DistributionSummary b = summarize_distribution(xs);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.mean_lo, b.mean_lo);
  EXPECT_EQ(a.mean_hi, b.mean_hi);
  EXPECT_EQ(a.p50_lo, b.p50_lo);
  EXPECT_EQ(a.p50_hi, b.p50_hi);
  EXPECT_EQ(a.p99_lo, b.p99_lo);
  EXPECT_EQ(a.p99_hi, b.p99_hi);
}

TEST(Bootstrap, SeedChangesResamplingButNotPointEstimates) {
  const std::vector<double> xs = skewed_samples(48);
  BootstrapOptions a;
  BootstrapOptions b;
  b.seed = a.seed + 1;
  const DistributionSummary sa = summarize_distribution(xs, a);
  const DistributionSummary sb = summarize_distribution(xs, b);
  EXPECT_EQ(sa.mean, sb.mean);
  EXPECT_EQ(sa.p50, sb.p50);
  EXPECT_EQ(sa.p99, sb.p99);
  EXPECT_EQ(sa.min, sb.min);
  EXPECT_EQ(sa.max, sb.max);
  // The resampled bounds move with the stream (not a strict requirement of
  // the estimator, but with B=1000 and noisy data a collision would itself
  // be a bug in the stream seeding).
  EXPECT_TRUE(sa.mean_lo != sb.mean_lo || sa.mean_hi != sb.mean_hi ||
              sa.p50_lo != sb.p50_lo || sa.p50_hi != sb.p50_hi);
}

TEST(Bootstrap, WiderConfidenceWidensTheInterval) {
  const std::vector<double> xs = skewed_samples(48);
  BootstrapOptions narrow;
  narrow.confidence = 0.5;
  BootstrapOptions wide;
  wide.confidence = 0.99;
  const DistributionSummary sn = summarize_distribution(xs, narrow);
  const DistributionSummary sw = summarize_distribution(xs, wide);
  EXPECT_LE(sw.mean_lo, sn.mean_lo);
  EXPECT_GE(sw.mean_hi, sn.mean_hi);
}

}  // namespace
}  // namespace reco
