// The umbrella header must pull in the whole public API and stay
// self-consistent (no ODR/IWYU surprises across modules).
#include "reco.hpp"

#include <gtest/gtest.h>

namespace reco {
namespace {

TEST(Umbrella, VersionIsCoherent) {
  EXPECT_EQ(kVersionMajor, 1);
  EXPECT_STREQ(kVersionString, "1.0");
}

TEST(Umbrella, EndToEndThroughTheUmbrellaOnly) {
  // Touch one symbol from every module to prove the umbrella suffices.
  GeneratorOptions g;
  g.num_ports = 8;
  g.num_coflows = 5;
  g.seed = 3;
  const std::vector<Coflow> coflows = generate_workload(g);

  const Coflow& c = coflows.front();
  const CircuitSchedule plan = reco_sin(c.demand, g.delta);                  // sched
  const ExecutionResult run = execute_all_stop(plan, c.demand, g.delta);     // ocs
  EXPECT_TRUE(run.satisfied);
  EXPECT_GE(run.cct, single_coflow_lower_bound(c.demand, g.delta) - 1e-9);   // core

  const auto match = bottleneck_perfect_matching(stuff(c.demand));           // matching/bvn
  EXPECT_TRUE(match.has_value());

  lp::Model model;                                                           // lp
  const int x = model.add_var(1.0);
  model.add_constraint({{{x, 1.0}}, lp::Sense::kGe, 1.0});
  EXPECT_EQ(lp::solve(model).status, lp::SolveStatus::kOptimal);

  sim::ReplayController controller(plan);                                    // sim
  EXPECT_TRUE(sim::simulate_single_coflow(controller, c.demand, g.delta).satisfied);

  const MultiScheduleResult multi = reco_mul_pipeline(coflows, g.delta, g.c_threshold);
  EXPECT_TRUE(is_port_feasible(multi.schedule));
  EXPECT_GT(mean({1.0, 3.0}), 0.0);                                          // stats
  EXPECT_EQ(csv_escape("a"), "a");
}

}  // namespace
}  // namespace reco
