// Worked examples lifted directly from the paper, checked end to end.
#include <gtest/gtest.h>

#include "bvn/regularization.hpp"
#include "core/lower_bound.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"

namespace reco {
namespace {

/// Fig. 2's demand matrix (delta = 100).
Matrix fig2_demand() {
  return Matrix::from_rows({{104, 109, 102}, {103, 105, 107}, {108, 101, 106}});
}

TEST(PaperFig2, RegularizedMatrixIsAllTwoHundreds) {
  const Matrix r = regularize(fig2_demand(), 100.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(r.at(i, j), 200.0);
  }
}

TEST(PaperFig2, UnregularizedScheduleFromTheFigure) {
  // The figure's 5-permutation BvN decomposition of D_ex, replayed.
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}, {1, 2}, {2, 0}}, 107.0});
  s.assignments.push_back({{{0, 0}, {1, 1}, {2, 2}}, 104.0});
  s.assignments.push_back({{{0, 2}, {1, 0}, {2, 1}}, 104.0});
  s.assignments.push_back({{{0, 1}, {1, 0}, {2, 2}}, 2.0});
  s.assignments.push_back({{{0, 2}, {1, 1}, {2, 0}}, 1.0});
  const ExecutionResult r = execute_all_stop(s, fig2_demand(), 100.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 5);
  // The paper quotes 815 with slightly inconsistent arithmetic (it charges
  // 101 for the third establishment although its bottleneck circuit needs
  // 103).  With consistent early-stop semantics the holds are
  // 107 + 104 + 103 + 2 + 1 = 317, so the CCT is 817.
  EXPECT_DOUBLE_EQ(r.transmission_time, 317.0);
  EXPECT_DOUBLE_EQ(r.cct, 817.0);
}

TEST(PaperFig2, RegularizedScheduleFromTheFigure) {
  // The figure's 3-permutation decomposition of the regularized matrix.
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}, {1, 1}, {2, 2}}, 200.0});
  s.assignments.push_back({{{0, 1}, {1, 2}, {2, 0}}, 200.0});
  s.assignments.push_back({{{0, 2}, {1, 0}, {2, 1}}, 200.0});
  const ExecutionResult r = execute_all_stop(s, fig2_demand(), 100.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 3);
  // Exactly the paper's arithmetic: (106 + 109 + 103) + 3 * 100 = 618.
  EXPECT_DOUBLE_EQ(r.transmission_time, 106.0 + 109.0 + 103.0);
  EXPECT_DOUBLE_EQ(r.cct, 618.0);
}

TEST(PaperFig2, RecoSinMatchesTheRegularizedBehaviour) {
  // Reco-Sin end to end on D_ex: three establishments, CCT in the vicinity
  // of 618 (the permutation split may differ, changing the per-assignment
  // maxima by a few units), always beating the figure's 815/817 and within
  // 2x of the lower bound.
  const Matrix d = fig2_demand();
  const CircuitSchedule s = reco_sin(d, 100.0);
  EXPECT_EQ(s.num_assignments(), 3);
  const ExecutionResult r = execute_all_stop(s, d, 100.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 3);
  EXPECT_LT(r.cct, 700.0);
  EXPECT_GT(r.cct, 600.0);
  EXPECT_LE(r.cct, 2.0 * single_coflow_lower_bound(d, 100.0));
}

TEST(PaperSec2, LowerBoundOnFig2) {
  // rho = max row/col sum of D_ex; tau = 3.
  const Matrix d = fig2_demand();
  EXPECT_DOUBLE_EQ(d.rho(), 104 + 109 + 102 + 0.0);  // row 0 wins? verify below
  // Row sums: 315, 315, 315; col sums: 315, 315, 315 -- perfectly balanced.
  EXPECT_DOUBLE_EQ(single_coflow_lower_bound(d, 100.0), 315.0 + 300.0);
}

}  // namespace
}  // namespace reco
