// End-to-end pipeline tests on generated workloads: every algorithm must
// produce feasible schedules that serve every demand, and the cross-
// algorithm relationships the paper reports must hold directionally.
#include <gtest/gtest.h>

#include "core/lower_bound.hpp"
#include "core/slice.hpp"
#include "ocs/all_stop_executor.hpp"
#include "ocs/not_all_stop_executor.hpp"
#include "sched/bvn_baseline.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "trace/generator.hpp"

namespace reco {
namespace {

GeneratorOptions small_options(std::uint64_t seed) {
  GeneratorOptions o;
  o.num_ports = 24;
  o.num_coflows = 40;
  o.seed = seed;
  return o;
}

TEST(Pipelines, EverySingleCoflowAlgorithmServesEveryDemand) {
  const GeneratorOptions o = small_options(201);
  const auto coflows = generate_workload(o);
  for (const Coflow& c : coflows) {
    for (const CircuitSchedule& s :
         {reco_sin(c.demand, o.delta), solstice(c.demand), bvn_baseline(c.demand)}) {
      ASSERT_TRUE(s.is_valid(o.num_ports)) << "coflow " << c.id;
      ASSERT_TRUE(execute_all_stop(s, c.demand, o.delta).satisfied) << "coflow " << c.id;
    }
  }
}

TEST(Pipelines, RecoSinWithinTheoremTwoBoundOnTrace) {
  const GeneratorOptions o = small_options(202);
  for (const Coflow& c : generate_workload(o)) {
    const ExecutionResult r = execute_all_stop(reco_sin(c.demand, o.delta), c.demand, o.delta);
    ASSERT_TRUE(r.satisfied);
    EXPECT_LE(r.cct, 2.0 * single_coflow_lower_bound(c.demand, o.delta) + 1e-9)
        << "coflow " << c.id;
  }
}

TEST(Pipelines, LowerBoundNeverBeatenByAnyAlgorithm) {
  const GeneratorOptions o = small_options(203);
  for (const Coflow& c : generate_workload(o)) {
    const Time lb = single_coflow_lower_bound(c.demand, o.delta);
    EXPECT_GE(execute_all_stop(reco_sin(c.demand, o.delta), c.demand, o.delta).cct, lb - 1e-9);
    EXPECT_GE(execute_all_stop(solstice(c.demand), c.demand, o.delta).cct, lb - 1e-9);
    EXPECT_GE(execute_all_stop(bvn_baseline(c.demand), c.demand, o.delta).cct, lb - 1e-9);
  }
}

TEST(Pipelines, RecoSinBeatsSolsticeOnAggregateCct) {
  const GeneratorOptions o = small_options(204);
  double reco_total = 0.0;
  double solstice_total = 0.0;
  for (const Coflow& c : generate_workload(o)) {
    reco_total += execute_all_stop(reco_sin(c.demand, o.delta), c.demand, o.delta).cct;
    solstice_total += execute_all_stop(solstice(c.demand), c.demand, o.delta).cct;
  }
  EXPECT_LT(reco_total, solstice_total);
}

TEST(Pipelines, NotAllStopNeverWorseThanAllStop) {
  const GeneratorOptions o = small_options(205);
  const auto coflows = generate_workload(o);
  for (int k = 0; k < 10; ++k) {
    const Coflow& c = coflows[k];
    const CircuitSchedule s = reco_sin(c.demand, o.delta);
    EXPECT_LE(execute_not_all_stop(s, c.demand, o.delta).cct,
              execute_all_stop(s, c.demand, o.delta).cct + 1e-9)
        << "coflow " << k;
  }
}

TEST(Pipelines, MultiCoflowSchedulesAreFeasibleAndComplete) {
  GeneratorOptions o = small_options(206);
  o.num_coflows = 25;
  const auto coflows = generate_workload(o);
  const MultiScheduleResult reco = reco_mul_pipeline(coflows, o.delta, o.c_threshold);
  const MultiScheduleResult sebf = sebf_solstice(coflows, o.delta);
  const MultiScheduleResult lp = lp_ii_gb(coflows, o.delta);
  for (const MultiScheduleResult* r : {&reco, &sebf, &lp}) {
    EXPECT_TRUE(is_port_feasible(r->schedule));
    for (const Coflow& c : coflows) {
      EXPECT_GE(r->cct[c.id], c.demand.rho() - 1e-9) << "coflow " << c.id;
    }
  }
  // Sequential baselines serve demands exactly on the real-time axis.
  EXPECT_TRUE(satisfies_demands(sebf.schedule, coflows));
  EXPECT_TRUE(satisfies_demands(lp.schedule, coflows));
}

TEST(Pipelines, RecoMulBeatsBaselinesOnGeneratedTrace) {
  GeneratorOptions o = small_options(207);
  o.num_coflows = 30;
  const auto coflows = generate_workload(o);
  const double reco = reco_mul_pipeline(coflows, o.delta, o.c_threshold).total_weighted_cct;
  const double lp = lp_ii_gb(coflows, o.delta).total_weighted_cct;
  const double sebf = sebf_solstice(coflows, o.delta).total_weighted_cct;
  EXPECT_LT(reco, lp);
  EXPECT_LT(reco, sebf);
}

TEST(Pipelines, RecoMulReconfigurationsBelowLpIiGb) {
  GeneratorOptions o = small_options(208);
  o.num_coflows = 30;
  const auto coflows = generate_workload(o);
  const MultiScheduleResult reco = reco_mul_pipeline(coflows, o.delta, o.c_threshold);
  const MultiScheduleResult lp = lp_ii_gb(coflows, o.delta);
  EXPECT_LT(reco.reconfigurations, lp.reconfigurations);
}

}  // namespace
}  // namespace reco
