// Speculative-peel equivalence sweep (ISSUE 9): speculative multi-round
// discovery must be *exactly* interchangeable with the sequential Phase-1
// chain.  The commit protocol promises byte-identical schedules at every
// (speculation depth, thread count) pair, because a validated speculation
// replays the very mutations sequential discovery would have made and a
// conflicting one is discarded and re-discovered sequentially.  This file
// pins that promise:
//
//  1. depth {0, 1, 2, 4} x threads {1, 2, 8} against the depth-0 baseline,
//     over matrices spanning N in {128, 512, 1024};
//  2. a conflict regression: matrices whose round-to-round repair coupling
//     forces speculations to collide, asserting via the obs counters that
//     conflicts actually happened *and* the output still matched.
//
// Part of the TSan CI job (RECO_THREADS=8): the concurrent discovery phase
// reads the shared index and matching state from every worker, so the
// sweep doubles as a race detector for the snapshot handoff.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bvn/parallel_peel.hpp"
#include "core/support_index.hpp"
#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

void expect_equal_schedules(const CircuitSchedule& a, const CircuitSchedule& b,
                            const std::string& ctx) {
  ASSERT_EQ(a.assignments.size(), b.assignments.size()) << ctx;
  for (std::size_t r = 0; r < a.assignments.size(); ++r) {
    const CircuitAssignment& x = a.assignments[r];
    const CircuitAssignment& y = b.assignments[r];
    ASSERT_EQ(x.duration, y.duration) << ctx << " round " << r;
    ASSERT_EQ(x.circuits.size(), y.circuits.size()) << ctx << " round " << r;
    for (std::size_t c = 0; c < x.circuits.size(); ++c) {
      ASSERT_EQ(x.circuits[c], y.circuits[c]) << ctx << " round " << r << " circuit " << c;
    }
  }
}

CircuitSchedule peel_spec(const Matrix& m, int threads, int depth) {
  runtime::set_thread_count(threads);
  CircuitSchedule s = peel_parallel(SupportIndex(m), depth);
  runtime::set_thread_count(0);
  return s;
}

TEST(SpeculativePeel, DepthAndThreadCountInvariant) {
  Rng rng(90210);
  struct Cell {
    int n;
    int num_perms;
    int trials;
  };
  // Lean at the large sizes: what N = 1024 adds over N = 128 is batch
  // after batch of wide freed groups, not different arithmetic.
  const Cell grid[] = {{128, 12, 3}, {512, 10, 1}, {1024, 8, 1}};
  for (const Cell& cell : grid) {
    for (int t = 0; t < cell.trials; ++t) {
      const Matrix m =
          testing::random_doubly_stochastic(rng, cell.n, cell.num_perms, 0.5, 3.0);
      const std::string ctx = "n=" + std::to_string(cell.n) + " trial=" + std::to_string(t);
      const CircuitSchedule base = peel_spec(m, 1, 0);
      for (const int depth : {0, 1, 2, 4}) {
        for (const int threads : {1, 2, 8}) {
          if (depth == 0 && threads == 1) continue;  // the baseline itself
          const CircuitSchedule other = peel_spec(m, threads, depth);
          expect_equal_schedules(base, other,
                                 ctx + " depth=" + std::to_string(depth) +
                                     " threads=" + std::to_string(threads));
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(SpeculativePeel, MaxDepthStillExact) {
  // The depth cap is the worst case for validation pressure: 9 rounds per
  // batch, every commit stamping rows the later speculations read.
  Rng rng(5150);
  const Matrix m = testing::random_doubly_stochastic(rng, 256, 10, 0.5, 3.0);
  const CircuitSchedule base = peel_spec(m, 1, 0);
  const CircuitSchedule spec = peel_spec(m, 8, kMaxSpeculationDepth);
  expect_equal_schedules(base, spec, "depth=max threads=8");
}

TEST(SpeculativePeel, ConflictsAreDetectedAndHarmless) {
  // Adversarial coupling: few distinct permutations with a tight value
  // range make consecutive freed groups repair through the same handful
  // of columns, so later speculations keep reading rows/columns the
  // earlier commits just rewired.  The sweep asserts that (a) conflicts
  // actually fire — otherwise the validation path is dead code — and
  // (b) every conflicted peel still matches the sequential baseline.
  obs::reset();
  obs::set_enabled(true);
  obs::Counter& conflicts = obs::metrics().counter("bvn.peel.spec_conflicts");
  obs::Counter& commits = obs::metrics().counter("bvn.peel.spec_commits");

  Rng rng(424242);
  bool saw_conflict = false;
  for (int t = 0; t < 10; ++t) {
    const Matrix m = testing::random_doubly_stochastic(rng, 64, 5, 1.0, 1.5);
    const std::string ctx = "adversarial trial=" + std::to_string(t);
    const CircuitSchedule base = peel_spec(m, 1, 0);
    const double before = conflicts.value();
    const CircuitSchedule spec = peel_spec(m, 2, 4);
    expect_equal_schedules(base, spec, ctx);
    if (::testing::Test::HasFatalFailure()) break;
    if (conflicts.value() > before) saw_conflict = true;
  }
  EXPECT_TRUE(saw_conflict) << "no speculation ever conflicted: validation path untested";
  EXPECT_GT(commits.value(), 0.0) << "no speculation ever committed: lookahead path untested";

  obs::set_enabled(false);
  obs::reset();
}

}  // namespace
}  // namespace reco
