// Randomized equivalence of the sparse (SupportIndex) decomposition stack
// against the retained dense reference implementations.
//
// The sparse kernels are designed to be *identical* to the dense ones on
// everything that reaches a schedule: support lists iterate ascending (the
// dense probe order restricted to nonzeros), stuffing's slack arithmetic
// uses ordered exact re-scans, and matchings are therefore the same
// matchings.  These tests pin that contract across sizes, densities, and
// all three BvN policies, and across runtime thread counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bvn/bvn.hpp"
#include "bvn/dense_reference.hpp"
#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"
#include "core/support_index.hpp"
#include "runtime/parallel.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

void expect_schedules_identical(const CircuitSchedule& sparse, const CircuitSchedule& dense,
                                const std::string& context) {
  ASSERT_EQ(sparse.num_assignments(), dense.num_assignments()) << context;
  for (int u = 0; u < sparse.num_assignments(); ++u) {
    const CircuitAssignment& a = sparse.assignments[u];
    const CircuitAssignment& b = dense.assignments[u];
    EXPECT_DOUBLE_EQ(a.duration, b.duration) << context << " assignment " << u;
    ASSERT_EQ(a.circuits.size(), b.circuits.size()) << context << " assignment " << u;
    for (std::size_t c = 0; c < a.circuits.size(); ++c) {
      EXPECT_EQ(a.circuits[c], b.circuits[c]) << context << " assignment " << u << " circuit " << c;
    }
  }
}

constexpr BvnPolicy kAllPolicies[] = {BvnPolicy::kFirstMatching, BvnPolicy::kMaxMinAmortized,
                                      BvnPolicy::kExactBottleneck};

const char* policy_name(BvnPolicy p) {
  switch (p) {
    case BvnPolicy::kFirstMatching: return "first";
    case BvnPolicy::kMaxMinAmortized: return "maxmin";
    case BvnPolicy::kExactBottleneck: return "bottleneck";
    // Not in kAllPolicies: the lazy-key peel orders its subtractions
    // differently from the dense eager peel, so bit-equivalence against
    // dense_reference does not hold (test_scale_equivalence pins its
    // determinism and reconstruction instead).
    case BvnPolicy::kParallelPeel: return "parallel";
  }
  return "?";
}

TEST(SparseEquivalence, StuffMatchesDenseReference) {
  Rng rng(7);
  for (const int n : {3, 8, 17, 32}) {
    for (const double density : {0.05, 0.2, 0.5, 1.0}) {
      const Matrix demand = testing::random_demand(rng, n, density, 0.5, 10.0);
      const Matrix dense = dense_reference::stuff(demand);
      const Matrix sparse = stuff(demand);
      ASSERT_EQ(sparse.n(), dense.n());
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (approx_zero(dense.at(i, j))) {
            // The dense repair pass can leave sub-tolerance round-off
            // crumbs that the index deliberately snaps to exact zero;
            // both are "zero" to every tolerance-aware consumer.
            EXPECT_TRUE(approx_zero(sparse.at(i, j)))
                << "n=" << n << " density=" << density << " at " << i << "," << j;
          } else {
            EXPECT_DOUBLE_EQ(sparse.at(i, j), dense.at(i, j))
                << "n=" << n << " density=" << density << " at " << i << "," << j;
          }
        }
      }
    }
  }
}

TEST(SparseEquivalence, BvnDecomposeMatchesDenseReferenceAllPolicies) {
  Rng rng(11);
  for (const int n : {4, 8, 16, 24}) {
    for (const double density : {0.05, 0.2, 0.6, 1.0}) {
      for (const BvnPolicy policy : kAllPolicies) {
        const Matrix demand = testing::random_demand(rng, n, density, 0.5, 10.0);
        const Matrix stuffed = stuff(demand);
        const std::string context = std::string("n=") + std::to_string(n) + " density=" +
                                    std::to_string(density) + " policy=" + policy_name(policy);
        const CircuitSchedule dense = dense_reference::bvn_decompose(stuffed, policy);
        const CircuitSchedule sparse = bvn_decompose(SupportIndex(stuffed), policy);
        expect_schedules_identical(sparse, dense, context);
        EXPECT_TRUE(sparse.satisfies(demand)) << context;
      }
    }
  }
}

TEST(SparseEquivalence, BvnDecomposeMatchesOnBirkhoffStructuredInputs) {
  // Doubly stochastic by construction (positive combinations of random
  // permutations) — exercises the peel without a stuffing step in front.
  Rng rng(13);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 4 + static_cast<int>(rng.uniform_int(12));
    const Matrix m =
        testing::random_doubly_stochastic(rng, n, 2 + static_cast<int>(rng.uniform_int(5)), 0.5, 4.0);
    for (const BvnPolicy policy : kAllPolicies) {
      const std::string context =
          std::string("trial=") + std::to_string(trial) + " policy=" + policy_name(policy);
      expect_schedules_identical(bvn_decompose(SupportIndex(m), policy),
                                 dense_reference::bvn_decompose(m, policy), context);
    }
  }
}

TEST(SparseEquivalence, SolsticeMatchesDenseReference) {
  Rng rng(17);
  for (const int n : {4, 8, 16, 32}) {
    for (const double density : {0.05, 0.2, 0.6, 1.0}) {
      const Matrix demand = testing::random_demand(rng, n, density, 0.5, 10.0);
      expect_schedules_identical(
          solstice(demand), dense_reference::solstice(demand),
          std::string("n=") + std::to_string(n) + " density=" + std::to_string(density));
    }
  }
}

TEST(SparseEquivalence, RecoSinPipelineMatchesDenseReferencePipeline) {
  // End-to-end Alg. 1: regularize -> stuff_granular -> decompose, sparse
  // pipeline (one index threaded through) vs dense stage-by-stage.
  Rng rng(19);
  const Time delta = 0.25;
  for (const int n : {4, 8, 16}) {
    for (const double density : {0.05, 0.2, 0.6, 1.0}) {
      for (const BvnPolicy policy : kAllPolicies) {
        const Matrix demand = testing::random_demand(rng, n, density, 1.0, 10.0);
        // reco_sin short-circuits empty demands (seed behaviour); the
        // hand-built dense pipeline below would stuff them to one quantum.
        if (demand.nnz() == 0) continue;
        const Matrix dense_stuffed =
            dense_reference::stuff_granular(regularize(demand, delta), delta);
        const CircuitSchedule dense = dense_reference::bvn_decompose(dense_stuffed, policy);
        const CircuitSchedule sparse = reco_sin(demand, delta, policy);
        expect_schedules_identical(
            sparse, dense,
            std::string("n=") + std::to_string(n) + " density=" + std::to_string(density) +
                " policy=" + policy_name(policy));
      }
    }
  }
}

TEST(SparseEquivalence, IdenticalAcrossThreadCounts) {
  // The decomposition kernels are sequential, but they run inside the
  // parallel per-coflow planning fan-out; the schedules must be identical
  // whether planned at RECO_THREADS=1 or on the full pool.
  Rng rng(23);
  std::vector<Matrix> demands;
  for (int k = 0; k < 12; ++k) {
    demands.push_back(testing::random_demand(rng, 12, 0.1 + 0.07 * k, 0.5, 10.0));
  }
  const auto plan_all = [&demands] {
    return runtime::parallel_map(demands, [](const Matrix& d) { return reco_sin(d, 0.25); });
  };
  runtime::set_thread_count(1);
  const std::vector<CircuitSchedule> sequential = plan_all();
  runtime::set_thread_count(4);
  const std::vector<CircuitSchedule> parallel = plan_all();
  runtime::set_thread_count(0);  // restore default
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t k = 0; k < sequential.size(); ++k) {
    expect_schedules_identical(parallel[k], sequential[k],
                               std::string("coflow ") + std::to_string(k));
    expect_schedules_identical(sequential[k],
                               dense_reference::bvn_decompose(
                                   dense_reference::stuff_granular(
                                       regularize(demands[k], 0.25), 0.25),
                                   BvnPolicy::kMaxMinAmortized),
                               std::string("dense coflow ") + std::to_string(k));
  }
}

}  // namespace
}  // namespace reco
