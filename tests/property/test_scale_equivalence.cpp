// Scale-path equivalence sweep (ISSUE 7): the two optimizations that kick
// in above N = 512 must be *exactly* interchangeable with the code paths
// they replace.
//
//  1. Bitset vs flat-CSR Hopcroft-Karp: BFS layer depths are canonical
//     (independent of intra-layer visit order) and the DFS phase always
//     walks the CSR ascending, so the two expansion strategies must yield
//     bit-identical matchings — pinned here across 200 random matrices
//     spanning N in {128, 512, 1024} and densities from ultra-sparse to
//     near-dense, for plain threshold matching, a value-cut matching, and
//     the full bottleneck ladder (warm-seeded, like a peel).
//
//  2. Parallel BvN peel: the materialization phase chunks rounds by a
//     fixed constant, so the emitted schedule must be byte-identical at
//     every thread count — pinned across threads in {1, 2, 8} — and its
//     service matrix must reconstruct the input within tolerance.
//
// This file is part of the TSan CI job (RECO_THREADS=8), so the
// thread-count sweep also doubles as a race detector for the peel's
// snapshot/replay handoff.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bvn/bvn.hpp"
#include "bvn/parallel_peel.hpp"
#include "bvn/stuffing.hpp"
#include "core/support_index.hpp"
#include "matching/matching_engine.hpp"
#include "runtime/thread_pool.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

// ---------------------------------------------------------------------------
// Part 1: bitset vs CSR Hopcroft-Karp
// ---------------------------------------------------------------------------

struct ScratchPair {
  MatchingScratch csr;
  MatchingScratch bit;
};

/// Force one scratch onto each BFS strategy and require bit-identical
/// results.  Both scratches see the same matrix sequence, so their warm
/// matchings evolve in lockstep iff every step is identical — the sweep
/// therefore pins the warm-start path as well as cold starts.
void expect_hk_equivalent(const SupportIndex& idx, ScratchPair& s, double value_cut,
                          const std::string& ctx) {
  s.csr.hk_mode = HkMode::kCsr;
  s.bit.hk_mode = HkMode::kBitset;
  const int n = idx.n();
  for (const double threshold : {2 * kTimeEps, value_cut}) {
    std::vector<int> ml_a(n, -1), mr_a(n, -1), ml_b(n, -1), mr_b(n, -1);
    build_csr(idx, threshold, /*with_values=*/false, s.csr);
    const int size_a = hk_augment_csr(s.csr, ml_a, mr_a, threshold, /*check_value=*/false);
    build_csr(idx, threshold, /*with_values=*/false, s.bit);
    const int size_b = hk_augment_csr(s.bit, ml_b, mr_b, threshold, /*check_value=*/false);
    ASSERT_EQ(size_a, size_b) << ctx << " threshold " << threshold;
    ASSERT_EQ(ml_a, ml_b) << ctx << " threshold " << threshold;
    ASSERT_EQ(mr_a, mr_b) << ctx << " threshold " << threshold;
  }
  const bool ok_a = bottleneck_solve(idx, s.csr);
  const bool ok_b = bottleneck_solve(idx, s.bit);
  ASSERT_EQ(ok_a, ok_b) << ctx;
  if (ok_a) {
    ASSERT_EQ(s.csr.bottleneck, s.bit.bottleneck) << ctx;
    ASSERT_EQ(s.csr.final_left, s.bit.final_left) << ctx;
    ASSERT_EQ(s.csr.final_right, s.bit.final_right) << ctx;
  }
}

TEST(ScaleEquivalence, BitsetMatchesCsrAcross200Matrices) {
  Rng rng(1024);
  ScratchPair s;
  int matrices = 0;
  // Trials weighted toward small N so the sweep stays fast; the large
  // sizes are the ones that exercise multi-word frontiers.
  struct Cell {
    int n;
    double density;
    int trials;
  };
  const Cell grid[] = {
      {128, 0.02, 30}, {128, 0.08, 30}, {128, 0.3, 30}, {128, 0.7, 30},
      {512, 0.02, 20}, {512, 0.1, 20},  {512, 0.3, 20},
      {1024, 0.05, 10}, {1024, 0.2, 10},
  };
  for (const Cell& cell : grid) {
    for (int t = 0; t < cell.trials; ++t) {
      const Matrix demand =
          testing::random_demand(rng, cell.n, cell.density, 0.5, 10.0);
      const SupportIndex idx(demand);
      const std::string ctx = "n=" + std::to_string(cell.n) + " d=" +
                              std::to_string(cell.density) + " trial=" + std::to_string(t);
      expect_hk_equivalent(idx, s, /*value_cut=*/5.0, ctx);
      ++matrices;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_EQ(matrices, 200);
  // The forced-kBitset scratch must actually have run word-parallel
  // phases — otherwise the sweep silently compared CSR with itself.
  EXPECT_GT(s.bit.stats.bitset_phases, 0u);
  EXPECT_GT(s.bit.stats.bitset_builds, 0u);
  EXPECT_EQ(s.csr.stats.bitset_phases, 0u);
}

TEST(ScaleEquivalence, AutoModePicksBitsetOnlyAboveTheGate) {
  Rng rng(77);
  MatchingScratch s;  // hk_mode defaults to kAuto
  // Below the port gate: dense 128-port matrix stays on CSR.
  const Matrix small = testing::random_demand(rng, 128, 0.5, 0.5, 10.0);
  bottleneck_solve(SupportIndex(small), s);
  EXPECT_EQ(s.stats.bitset_phases, 0u);
  // Above the gate and above the density cut: bitset engages.
  const Matrix large = testing::random_demand(rng, 512, 0.25, 0.5, 10.0);
  bottleneck_solve(SupportIndex(large), s);
  EXPECT_GT(s.stats.bitset_phases, 0u);
  // Above the gate but ultra-sparse: CSR retained.
  const std::uint64_t phases_before = s.stats.bitset_phases;
  const Matrix sparse = testing::random_demand(rng, 512, 0.01, 0.5, 10.0);
  bottleneck_solve(SupportIndex(sparse), s);
  EXPECT_EQ(s.stats.bitset_phases, phases_before);
}

// ---------------------------------------------------------------------------
// Part 2: parallel peel determinism + reconstruction
// ---------------------------------------------------------------------------

void expect_equal_schedules(const CircuitSchedule& a, const CircuitSchedule& b,
                            const std::string& ctx) {
  ASSERT_EQ(a.assignments.size(), b.assignments.size()) << ctx;
  for (std::size_t r = 0; r < a.assignments.size(); ++r) {
    const CircuitAssignment& x = a.assignments[r];
    const CircuitAssignment& y = b.assignments[r];
    ASSERT_EQ(x.duration, y.duration) << ctx << " round " << r;
    ASSERT_EQ(x.circuits.size(), y.circuits.size()) << ctx << " round " << r;
    for (std::size_t c = 0; c < x.circuits.size(); ++c) {
      ASSERT_EQ(x.circuits[c], y.circuits[c]) << ctx << " round " << r << " circuit " << c;
    }
  }
}

CircuitSchedule peel_with_threads(const Matrix& m, int threads) {
  runtime::set_thread_count(threads);
  CircuitSchedule s = bvn_decompose(SupportIndex(m), BvnPolicy::kParallelPeel);
  runtime::set_thread_count(0);
  return s;
}

void expect_reconstructs(const Matrix& m, const CircuitSchedule& s, const std::string& ctx) {
  const int n = m.n();
  ASSERT_TRUE(s.is_valid(n)) << ctx;
  const Matrix service = s.service_matrix(n);
  // Tolerance covers accumulated per-round roundoff plus the cover tail
  // (which may over-serve tolerance-scale crumbs).  Max-error scan in
  // plain code: N^2 ASSERT_NEAR calls at N = 1024 dominate the test.
  double max_err = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      max_err = std::max(max_err, std::abs(service.at(i, j) - m.at(i, j)));
    }
  }
  ASSERT_LE(max_err, 1e-6) << ctx;
}

TEST(ScaleEquivalence, ParallelPeelIsThreadCountInvariant) {
  Rng rng(4096);
  struct Cell {
    int n;
    int num_perms;
    int trials;
  };
  // Round count (and so schedule size) scales with nnz ~ n * num_perms;
  // the large cells are kept lean — what they add over n = 128 is
  // multi-word bitset frontiers and hundreds of materialization chunks,
  // not more rounds of the same arithmetic.
  const Cell grid[] = {{128, 12, 6}, {512, 12, 2}, {1024, 8, 1}};
  for (const Cell& cell : grid) {
    for (int t = 0; t < cell.trials; ++t) {
      const Matrix m =
          testing::random_doubly_stochastic(rng, cell.n, cell.num_perms, 0.5, 3.0);
      const std::string ctx =
          "n=" + std::to_string(cell.n) + " trial=" + std::to_string(t);
      const CircuitSchedule base = peel_with_threads(m, 1);
      expect_reconstructs(m, base, ctx);
      for (const int threads : {2, 8}) {
        const CircuitSchedule other = peel_with_threads(m, threads);
        expect_equal_schedules(base, other, ctx + " threads=" + std::to_string(threads));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ScaleEquivalence, ParallelPeelHandlesStuffedPipelineMatrices) {
  // The production caller peels stuffed demand (regularize -> stuff ->
  // decompose); stuffed matrices are denser and have long runs of
  // equal-valued crumbs, which stresses the zero-set extraction.
  Rng rng(9);
  for (const int n : {96, 256}) {
    const Matrix demand = testing::random_demand(rng, n, 0.2, 0.5, 10.0);
    const SupportIndex stuffed = stuff(SupportIndex(demand));
    Matrix m(n);
    for (int i = 0; i < n; ++i) {
      const auto cols = stuffed.row_support(i);
      const auto vals = stuffed.row_values(i);
      for (int k = 0; k < cols.size(); ++k) m.at(i, cols[k]) = vals[k];
    }
    const std::string ctx = "stuffed n=" + std::to_string(n);
    const CircuitSchedule base = peel_with_threads(m, 1);
    expect_reconstructs(m, base, ctx);
    const CircuitSchedule par = peel_with_threads(m, 8);
    expect_equal_schedules(base, par, ctx);
  }
}

TEST(ScaleEquivalence, ParallelPeelCoversWhenNoPerfectMatchingExists) {
  // peel_parallel itself (unlike bvn_decompose) does not require Birkhoff
  // structure: an initial imperfect matching aborts straight into the
  // cover fallback, which must still serve every entry.
  Matrix m(4);
  m.at(0, 0) = 1.0;
  m.at(1, 0) = 0.5;  // column 0 doubly loaded, row 3 empty: no perfect matching
  m.at(2, 2) = 2.0;
  const CircuitSchedule s = peel_parallel(SupportIndex(m));
  const Matrix service = s.service_matrix(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_GE(service.at(i, j) + kTimeEps, m.at(i, j)) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace reco
