// Cross-cutting randomized invariants: every scheduler in the library,
// hammered over many seeds with one shared set of "laws".  These are the
// regressions most likely to catch a subtle break when any module changes:
//
//   L1  every single-coflow schedule is port-valid and serves its demand;
//   L2  no algorithm ever beats the rho + tau*delta lower bound;
//   L3  Reco-Sin stays within Theorem 2's factor of that bound;
//   L4  multi-coflow schedules are port-feasible and every coflow's CCT
//       is at least its own bottleneck;
//   L5  the event-driven fabric agrees with the analytic executors;
//   L6  determinism: same seed => bit-identical outcomes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lower_bound.hpp"
#include "core/slice.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/bvn_baseline.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/packet_scheduler.hpp"
#include "sched/reco_mul.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "sched/sunflow.hpp"
#include "sched/tms.hpp"
#include "sim/fabric.hpp"
#include "testing_util.hpp"
#include "trace/generator.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

class SingleCoflowLaws : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SingleCoflowLaws,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

TEST_P(SingleCoflowLaws, AllSchedulersServeAllDemandsAboveLowerBound) {
  Rng rng(GetParam());
  const int n = rng.uniform_int(3, 12);
  const Time delta = rng.uniform(0.005, 0.5);
  const Matrix d = testing::random_demand(rng, n, rng.uniform(0.15, 0.95), 0.05, 8.0);
  if (d.nnz() == 0) GTEST_SKIP();
  const Time lb = single_coflow_lower_bound(d, delta);

  struct Case {
    const char* name;
    CircuitSchedule schedule;
  };
  const Case cases[] = {
      {"reco-sin", reco_sin(d, delta)},
      {"solstice", solstice(d)},
      {"bvn", bvn_baseline(d)},
      {"tms", tms_schedule(d, delta)},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(c.schedule.is_valid(n)) << c.name;                            // L1
    const ExecutionResult r = execute_all_stop(c.schedule, d, delta);
    ASSERT_TRUE(r.satisfied) << c.name;                                       // L1
    EXPECT_GE(r.cct, lb - 1e-7) << c.name;                                    // L2
  }
  // L3: Theorem 2 for Reco-Sin specifically.
  const ExecutionResult reco = execute_all_stop(cases[0].schedule, d, delta);
  EXPECT_LE(reco.cct, 2.0 * lb + 1e-7);

  // Sunflow (not-all-stop native) also respects the bound floor:
  EXPECT_GE(sunflow(d, delta).cct, d.rho() - 1e-7);  // L2 (NAS can beat tau*delta)
}

TEST_P(SingleCoflowLaws, EventDrivenFabricAgreesWithExecutor) {
  Rng rng(1000 + GetParam());
  const int n = rng.uniform_int(3, 10);
  const Time delta = rng.uniform(0.01, 0.3);
  const Matrix d = testing::random_demand(rng, n, rng.uniform(0.2, 0.8), 0.1, 5.0);
  if (d.nnz() == 0) GTEST_SKIP();
  const CircuitSchedule s = reco_sin(d, delta);
  sim::ReplayController controller(s);
  const sim::SimulationReport des = sim::simulate_single_coflow(controller, d, delta);
  const ExecutionResult analytic = execute_all_stop(s, d, delta);
  EXPECT_NEAR(des.cct, analytic.cct, 1e-7);                                   // L5
  EXPECT_EQ(des.reconfigurations, analytic.reconfigurations);
}

class MultiCoflowLaws : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MultiCoflowLaws, ::testing::Values(7, 17, 27, 37, 47));

TEST_P(MultiCoflowLaws, AllPipelinesFeasibleAndBottleneckRespecting) {
  GeneratorOptions g;
  g.num_ports = 20;
  g.num_coflows = 25;
  g.seed = GetParam();
  const auto coflows = generate_workload(g);
  const MultiScheduleResult results[] = {
      reco_mul_pipeline(coflows, g.delta, g.c_threshold),
      sebf_solstice(coflows, g.delta),
      lp_ii_gb(coflows, g.delta),
  };
  for (const MultiScheduleResult& r : results) {
    EXPECT_TRUE(is_port_feasible(r.schedule));                                // L4
    for (const Coflow& c : coflows) {
      EXPECT_GE(r.cct[c.id], c.demand.rho() - 1e-7);                          // L4
    }
    EXPECT_GT(r.reconfigurations, 0);
  }
}

TEST_P(MultiCoflowLaws, DeterministicAcrossRuns) {
  GeneratorOptions g;
  g.num_ports = 16;
  g.num_coflows = 15;
  g.seed = GetParam();
  const auto coflows_a = generate_workload(g);
  const auto coflows_b = generate_workload(g);
  const MultiScheduleResult a = reco_mul_pipeline(coflows_a, g.delta, g.c_threshold);
  const MultiScheduleResult b = reco_mul_pipeline(coflows_b, g.delta, g.c_threshold);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());                            // L6
  for (std::size_t f = 0; f < a.schedule.size(); ++f) {
    EXPECT_EQ(a.schedule[f], b.schedule[f]);
  }
  EXPECT_DOUBLE_EQ(a.total_weighted_cct, b.total_weighted_cct);
}

class Lemma2Laws : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Laws, ::testing::Values(5, 15, 25, 35, 45));

TEST_P(Lemma2Laws, TransformGridAlignedAndConflictFreeWhenThresholdHolds) {
  // Lemma 2: when every demand is >= c*delta, stretching by
  // (floor(sqrt(c))+1)/floor(sqrt(c)) then snapping starts *down* to the
  // sqrt(c)*delta grid never makes two flows sharing a port overlap — the
  // legalization pass must be a no-op.  We check its two observable
  // promises directly on the pseudo-time schedule: per-port
  // non-overlapping, and every start an exact grid multiple.
  Rng rng(GetParam());
  const Time delta = rng.uniform(0.01, 0.2);
  const double c = rng.uniform(1.0, 9.0);
  const auto coflows =
      testing::random_workload(rng, rng.uniform_int(4, 10), rng.uniform_int(4, 10), delta, c);
  const SliceSchedule packet = packet_schedule(coflows, bssi_order(coflows));
  const RecoMulSchedule t = reco_mul_transform(packet, delta, c);

  EXPECT_TRUE(is_port_feasible(t.pseudo));  // non-overlapping per port
  EXPECT_TRUE(is_port_feasible(t.real));
  const Time grid = std::sqrt(c) * delta;
  for (const FlowSlice& s : t.pseudo) {
    const double k = s.start / grid;
    EXPECT_NEAR(k, std::round(k), 1e-6) << "pseudo start " << s.start
                                        << " off the sqrt(c)*delta grid (grid=" << grid << ")";
  }
  ASSERT_EQ(t.pseudo.size(), packet.size());  // legalization dropped nothing
}

TEST(PropertySmoke, GeneratedTraceNeverViolatesThresholdByDefault) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    GeneratorOptions g;
    g.num_ports = 30;
    g.num_coflows = 60;
    g.seed = seed;
    for (const Coflow& c : generate_workload(g)) {
      EXPECT_GE(c.demand.min_nonzero(), g.c_threshold * g.delta - 1e-12);
    }
  }
}

}  // namespace
}  // namespace reco
