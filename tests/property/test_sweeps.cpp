// Parameterized sweeps over the experiment axes (density, delta, ordering
// policy): the invariants that every bench configuration relies on.
#include <gtest/gtest.h>

#include "core/lower_bound.hpp"
#include "core/slice.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

// --- density sweep: single-coflow laws at every fill level ---------------

class DensitySweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Fills, DensitySweep, ::testing::Values(0.05, 0.15, 0.35, 0.6, 0.9),
                         [](const auto& info) {
                           return "fill" + std::to_string(static_cast<int>(info.param * 100));
                         });

TEST_P(DensitySweep, RecoSinWithinTheoremTwoAtEveryDensity) {
  Rng rng(910 + static_cast<std::uint64_t>(GetParam() * 100));
  const Time delta = 0.05;
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix d = testing::random_demand(rng, 10, GetParam(), 0.2, 6.0);
    if (d.nnz() == 0) continue;
    const ExecutionResult r = execute_all_stop(reco_sin(d, delta), d, delta);
    ASSERT_TRUE(r.satisfied);
    EXPECT_LE(r.cct, 2.0 * single_coflow_lower_bound(d, delta) + 1e-7);
  }
}

TEST_P(DensitySweep, SolsticeServesAtEveryDensity) {
  Rng rng(920 + static_cast<std::uint64_t>(GetParam() * 100));
  const Matrix d = testing::random_demand(rng, 10, GetParam(), 0.2, 6.0);
  if (d.nnz() == 0) GTEST_SKIP();
  EXPECT_TRUE(execute_all_stop(solstice(d), d, 0.05).satisfied);
}

// --- delta sweep: executor laws across four decades of delta -------------

class DeltaSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweep, ::testing::Values(1e-6, 1e-4, 1e-2, 1.0),
                         [](const auto& info) {
                           return "d" + std::to_string(static_cast<int>(-std::log10(info.param)));
                         });

TEST_P(DeltaSweep, RegularizationGranularityHolds) {
  const Time delta = GetParam();
  Rng rng(930);
  const Matrix d = testing::random_demand(rng, 8, 0.5, 4 * delta, 400 * delta);
  const CircuitSchedule s = reco_sin(d, delta);
  for (const auto& a : s.assignments) {
    EXPECT_GE(a.duration, delta - delta * 1e-6);
  }
  EXPECT_TRUE(execute_all_stop(s, d, delta).satisfied);
}

TEST_P(DeltaSweep, ReconfigurationAccountingExact) {
  const Time delta = GetParam();
  Rng rng(940);
  const Matrix d = testing::random_demand(rng, 6, 0.6, 4 * delta, 100 * delta);
  const ExecutionResult r = execute_all_stop(reco_sin(d, delta), d, delta);
  EXPECT_NEAR(r.reconfiguration_time, r.reconfigurations * delta, delta * 1e-6);
  EXPECT_NEAR(r.cct, r.transmission_time + r.reconfiguration_time, 1e-9 + delta * 1e-6);
}

// --- ordering sweep: every ALG_p choice keeps Reco-Mul lawful ------------

class OrderingSweep : public ::testing::TestWithParam<OrderingPolicy> {};

INSTANTIATE_TEST_SUITE_P(Policies, OrderingSweep,
                         ::testing::Values(OrderingPolicy::kSebf, OrderingPolicy::kBssi,
                                           OrderingPolicy::kLp),
                         [](const auto& info) {
                           switch (info.param) {
                             case OrderingPolicy::kSebf: return "Sebf";
                             case OrderingPolicy::kBssi: return "Bssi";
                             case OrderingPolicy::kLp: return "Lp";
                           }
                           return "Unknown";
                         });

TEST_P(OrderingSweep, RecoMulPipelineLawfulUnderEveryOrdering) {
  Rng rng(950);
  const auto coflows = testing::random_workload(rng, 10, 6, 0.02, 4.0);
  const MultiScheduleResult r = reco_mul_pipeline(coflows, 0.02, 4.0, GetParam());
  EXPECT_TRUE(is_port_feasible(r.schedule));
  EXPECT_GT(r.reconfigurations, 0);
  for (const Coflow& c : coflows) {
    EXPECT_GE(r.cct[c.id], c.demand.rho() - 1e-9);
  }
}

}  // namespace
}  // namespace reco
