// SIMD kernel bit-equivalence sweep (ISSUE 9): every kernel in
// core/simd.hpp at every supported dispatch tier must produce output
// bit-identical to the scalar reference tier.  The sweep drives all
// eleven kernels with operands taken from real SupportIndex rows — 200
// random matrices spanning N in {128, 512, 1024} and densities from
// ultra-sparse to near-dense — so the vector tail handling, the gather
// index patterns, and the equal-valued runs of stuffed-style data are all
// exercised, not just round-multiple-of-8 arrays.
//
// Bit-identical means bit-identical: doubles are compared through
// memcmp, so a -0.0 vs +0.0 or NaN-payload divergence fails even where
// operator== would pass.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/matrix.hpp"
#include "core/simd.hpp"
#include "core/support_index.hpp"
#include "core/types.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

void expect_bits_equal(const std::vector<double>& a, const std::vector<double>& b,
                       int count, const std::string& ctx) {
  for (int k = 0; k < count; ++k) {
    ASSERT_TRUE(bits_equal(a[k], b[k]))
        << ctx << " lane " << k << ": " << a[k] << " vs " << b[k];
  }
}

/// Pin every kernel of `level` against the scalar tier on one row's
/// operands: the dense source row, its support columns, and its values.
void check_row(const Matrix& dense, const SupportIndex& idx, int row, simd::Level level,
               const std::string& ctx) {
  const simd::Kernels& ref = simd::kernels_for(simd::Level::kScalar);
  const simd::Kernels& kn = simd::kernels_for(level);
  const auto cols = idx.row_support(row);
  const int len = cols.size();
  if (len == 0) return;
  const double* src = dense.row_data(row);

  std::vector<double> a(len), b(len);
  kn.gather(src, cols.begin(), len, a.data());
  ref.gather(src, cols.begin(), len, b.data());
  expect_bits_equal(a, b, len, ctx + " gather");
  const std::vector<double> vals = b;  // scalar-gathered row values

  ASSERT_TRUE(bits_equal(kn.max_value(vals.data(), len, 0.0),
                         ref.max_value(vals.data(), len, 0.0)))
      << ctx << " max_value";
  ASSERT_TRUE(bits_equal(kn.max_gather(src, cols.begin(), len, 0.0),
                         ref.max_gather(src, cols.begin(), len, 0.0)))
      << ctx << " max_gather";
  ASSERT_TRUE(bits_equal(kn.min_value(vals.data(), len, vals[0]),
                         ref.min_value(vals.data(), len, vals[0])))
      << ctx << " min_value";
  // Cut at a value actually present so the <= boundary is hit, plus one
  // strictly interior cut.
  for (const double cut : {vals[len / 2], 0.5 * (vals[0] + vals[len - 1])}) {
    ASSERT_TRUE(bits_equal(kn.max_value_leq(vals.data(), len, cut, 0.0),
                           ref.max_value_leq(vals.data(), len, cut, 0.0)))
        << ctx << " max_value_leq cut=" << cut;
  }
  ASSERT_EQ(kn.argmax(vals.data(), len), ref.argmax(vals.data(), len)) << ctx << " argmax";

  for (const double quantum : {kMinServiceQuantum, 0.25}) {
    kn.round_up_quantum(vals.data(), len, quantum, a.data());
    ref.round_up_quantum(vals.data(), len, quantum, b.data());
    expect_bits_equal(a, b, len, ctx + " round_up_quantum q=" + std::to_string(quantum));
  }

  const double minuend = ref.max_value(vals.data(), len, 0.0);
  kn.sub_clamp(minuend, vals.data(), len, a.data());
  ref.sub_clamp(minuend, vals.data(), len, b.data());
  expect_bits_equal(a, b, len, ctx + " sub_clamp");

  // Partitions mutate in place: run each tier on its own copy.  The kept
  // prefix must match bit-for-bit and in order (stability); lanes beyond
  // the kept count are unspecified by contract.
  for (const double pivot : {vals[len / 2], 0.0}) {
    a = vals;
    b = vals;
    const int wa = kn.partition_greater(a.data(), len, pivot);
    const int wb = ref.partition_greater(b.data(), len, pivot);
    ASSERT_EQ(wa, wb) << ctx << " partition_greater pivot=" << pivot;
    expect_bits_equal(a, b, wa, ctx + " partition_greater kept");
  }
  {
    const double upper = vals[len / 2];
    const double certify = len >= 4 ? vals[len / 4] : upper;
    a = vals;
    b = vals;
    std::int64_t ca = 0, cb = 0;
    const int wa = kn.partition_keep_below(a.data(), len, upper, certify, &ca);
    const int wb = ref.partition_keep_below(b.data(), len, upper, certify, &cb);
    ASSERT_EQ(wa, wb) << ctx << " partition_keep_below";
    ASSERT_EQ(ca, cb) << ctx << " partition_keep_below certified";
    expect_bits_equal(a, b, wa, ctx + " partition_keep_below kept");
  }

  std::vector<int> ia(2 * static_cast<std::size_t>(len)), ib(ia.size());
  kn.iota_interleave(cols.begin(), len, ia.data());
  ref.iota_interleave(cols.begin(), len, ib.data());
  ASSERT_EQ(ia, ib) << ctx << " iota_interleave";
}

TEST(SimdKernels, EveryTierMatchesScalarAcross200Matrices) {
  const std::vector<simd::Level> levels = simd::supported_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);

  Rng rng(2048);
  struct Cell {
    int n;
    double density;
    int trials;
  };
  // Same shape as the Hopcroft-Karp sweep: weighted toward small N, with
  // the large sizes supplying long rows (many full vector blocks) and the
  // sparse ones supplying 1-3 element tails.
  const Cell grid[] = {
      {128, 0.02, 40}, {128, 0.08, 40}, {128, 0.3, 30}, {128, 0.7, 30},
      {512, 0.02, 15}, {512, 0.1, 15},  {512, 0.3, 10},
      {1024, 0.05, 10}, {1024, 0.2, 10},
  };
  int matrices = 0;
  for (const Cell& cell : grid) {
    for (int t = 0; t < cell.trials; ++t) {
      const Matrix dense = testing::random_demand(rng, cell.n, cell.density, 0.5, 10.0);
      const SupportIndex idx(dense);
      // A handful of rows per matrix keeps the sweep fast; rows differ in
      // degree, so tails of every length show up across the 200 matrices.
      for (const int row : {0, cell.n / 3, cell.n / 2, cell.n - 1}) {
        for (const simd::Level level : levels) {
          const std::string ctx = "n=" + std::to_string(cell.n) +
                                  " d=" + std::to_string(cell.density) +
                                  " t=" + std::to_string(t) + " row=" + std::to_string(row) +
                                  " level=" + simd::level_name(level);
          check_row(dense, idx, row, level, ctx);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
      ++matrices;
    }
  }
  EXPECT_EQ(matrices, 200);
}

TEST(SimdKernels, EdgeLengthsAndEqualRuns) {
  // Degenerate shapes the matrix sweep cannot guarantee: empty input,
  // single lane, exact vector widths, and all-equal values (the stuffed
  // crumb pattern, where max/min tie-breaking has the most room to drift).
  const std::vector<simd::Level> levels = simd::supported_levels();
  const simd::Kernels& ref = simd::kernels_for(simd::Level::kScalar);
  for (const simd::Level level : levels) {
    const simd::Kernels& kn = simd::kernels_for(level);
    const std::string ctx = std::string("level=") + simd::level_name(level);
    EXPECT_EQ(kn.argmax(nullptr, 0), -1) << ctx;
    for (const int len : {1, 2, 3, 4, 5, 7, 8, 9, 16, 33}) {
      std::vector<double> v(len, 2.5);  // all-equal run
      std::vector<int> idx(len);
      for (int k = 0; k < len; ++k) idx[k] = (k * 7) % len;
      ASSERT_EQ(kn.argmax(v.data(), len), ref.argmax(v.data(), len)) << ctx << " len=" << len;
      ASSERT_TRUE(bits_equal(kn.max_value(v.data(), len, 0.0),
                             ref.max_value(v.data(), len, 0.0)))
          << ctx << " len=" << len;
      ASSERT_TRUE(bits_equal(kn.min_value(v.data(), len, v[0]),
                             ref.min_value(v.data(), len, v[0])))
          << ctx << " len=" << len;
      std::vector<double> a(len), b(len);
      kn.gather(v.data(), idx.data(), len, a.data());
      ref.gather(v.data(), idx.data(), len, b.data());
      for (int k = 0; k < len; ++k) ASSERT_TRUE(bits_equal(a[k], b[k])) << ctx;
      // Pivot equal to every element: partition keeps nothing (> is strict).
      a = v;
      b = v;
      ASSERT_EQ(kn.partition_greater(a.data(), len, 2.5),
                ref.partition_greater(b.data(), len, 2.5))
          << ctx << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace reco
