// Randomized bit-equivalence of the amortized matching engine against the
// retained seed oracle (dense_reference::bottleneck_perfect_matching_reference).
//
// The engine's warm starts, ladder reuse, and Hall-certificate pruning are
// pure accelerations: probes only answer feasibility (whose answer is
// algorithm-independent) and the returned matching comes from one
// cold-start Hopcroft-Karp in the seed's exact visit order.  These tests
// pin that contract — values, pairs, and whole peel schedules — across
// the bench density grid, both overloads, and warm-vs-cold peel rounds.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "bvn/bvn.hpp"
#include "bvn/dense_reference.hpp"
#include "bvn/stuffing.hpp"
#include "core/support_index.hpp"
#include "matching/bottleneck.hpp"
#include "matching/matching_engine.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

void expect_matchings_identical(const std::optional<BottleneckMatching>& engine,
                                const std::optional<BottleneckMatching>& oracle,
                                const std::string& context) {
  ASSERT_EQ(engine.has_value(), oracle.has_value()) << context;
  if (!engine) return;
  // Bit-identical, not approximately equal: the engine selects the same
  // ladder entry and runs the same final matching as the seed.
  EXPECT_EQ(engine->bottleneck, oracle->bottleneck) << context;
  EXPECT_EQ(engine->pairs, oracle->pairs) << context;
}

TEST(MatchingEngineEquivalence, BitIdenticalToSeedOn200RandomMatrices) {
  // 40 matrices per density across the bench sweep grid (permille
  // {50, 100, 200, 500, 1000} in bench_micro_kernels.cpp) = 200 total.
  // Stuffing guarantees a perfect matching exists for half of them; the
  // raw half also exercises agreement on infeasible (nullopt) inputs.
  Rng rng(20260806);
  int trials = 0;
  for (const double density : {0.05, 0.1, 0.2, 0.5, 1.0}) {
    for (int k = 0; k < 40; ++k) {
      const int n = 4 + static_cast<int>(rng.uniform_int(29));  // 4..32
      Matrix m = testing::random_demand(rng, n, density, 0.5, 10.0);
      if (k % 2 == 0 && m.nnz() > 0) m = stuff(m);
      const std::string context = "density=" + std::to_string(density) + " trial=" +
                                  std::to_string(k) + " n=" + std::to_string(n);
      const auto oracle = dense_reference::bottleneck_perfect_matching_reference(m);

      // Dense overload, via the thread-local-scratch wrapper.
      expect_matchings_identical(bottleneck_perfect_matching(m), oracle, context + " dense");
      // Sparse overload against the sparse oracle and the dense oracle.
      const SupportIndex idx(m);
      expect_matchings_identical(bottleneck_perfect_matching(idx),
                                 dense_reference::bottleneck_perfect_matching_reference(idx),
                                 context + " sparse");
      expect_matchings_identical(bottleneck_perfect_matching(idx), oracle,
                                 context + " sparse-vs-dense");
      ++trials;
    }
  }
  EXPECT_EQ(trials, 200);
}

TEST(MatchingEngineEquivalence, FullPeelSchedulesMatchSeedReference) {
  // Whole kExactBottleneck decompositions: the warm-started engine peel
  // must emit the exact assignment sequence of the seed reference peel
  // (dense_reference::peel uses the local seed oracle round by round).
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 4 + static_cast<int>(rng.uniform_int(17));
    const Matrix m = testing::random_doubly_stochastic(
        rng, n, 2 + static_cast<int>(rng.uniform_int(6)), 0.5, 4.0);
    const CircuitSchedule warm = bvn_decompose(SupportIndex(m), BvnPolicy::kExactBottleneck);
    const CircuitSchedule seed = dense_reference::bvn_decompose(m, BvnPolicy::kExactBottleneck);
    const std::string context = "trial=" + std::to_string(trial) + " n=" + std::to_string(n);
    ASSERT_EQ(warm.num_assignments(), seed.num_assignments()) << context;
    for (int u = 0; u < warm.num_assignments(); ++u) {
      EXPECT_DOUBLE_EQ(warm.assignments[u].duration, seed.assignments[u].duration)
          << context << " assignment " << u;
      EXPECT_EQ(warm.assignments[u].circuits, seed.assignments[u].circuits)
          << context << " assignment " << u;
    }
  }
}

TEST(MatchingEngineEquivalence, WarmStartMatchesColdStartAcrossPeelRounds) {
  // Two hand-driven peels of the same matrix: one scratch carried across
  // rounds (warm starts + ladder reuse + buffer reuse) vs a fresh scratch
  // per round (every solve cold).  Identical bottlenecks and matchings
  // every round — warm state is an accelerator, never an input.
  Rng rng(37);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 6 + static_cast<int>(rng.uniform_int(19));
    SupportIndex warm_m(testing::random_doubly_stochastic(
        rng, n, 3 + static_cast<int>(rng.uniform_int(6)), 0.5, 4.0));
    SupportIndex cold_m = warm_m;
    MatchingScratch warm;
    int round = 0;
    while (warm_m.nnz() > 0) {
      const bool warm_ok = bottleneck_solve(warm_m, warm);
      MatchingScratch cold;  // fresh: no warm seed, no reused buffers
      const bool cold_ok = bottleneck_solve(cold_m, cold);
      const std::string context =
          "trial=" + std::to_string(trial) + " round=" + std::to_string(round);
      ASSERT_EQ(warm_ok, cold_ok) << context;
      if (!warm_ok) break;
      EXPECT_EQ(warm.bottleneck, cold.bottleneck) << context;
      EXPECT_EQ(warm.final_left, cold.final_left) << context;
      for (int i = 0; i < n; ++i) {
        const int j = warm.final_left[i];
        warm_m.set(i, j, clamp_zero(warm_m.at(i, j) - warm.bottleneck));
        cold_m.set(i, j, clamp_zero(cold_m.at(i, j) - cold.bottleneck));
      }
      ++round;
    }
    EXPECT_GE(round, 1) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace reco
