// Telemetry must be write-only: collection reads pipeline state and
// accumulates numbers, never feeds a decision.  These tests pin that
// contract by running the same scheduling problems with obs enabled and
// disabled and comparing the serialized outputs byte for byte.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/coflow.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "sim/online_daemon.hpp"
#include "stats/csv.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

/// Guard: forces telemetry to a known state and restores + wipes on exit,
/// so a failing assertion can't leak an enabled tracer into other tests.
class ObsState {
 public:
  explicit ObsState(bool on) : was_(obs::enabled()) { obs::set_enabled(on); }
  ~ObsState() {
    obs::set_enabled(was_);
    obs::reset();
  }

 private:
  bool was_;
};

std::string slices_csv(const SliceSchedule& schedule) {
  std::ostringstream out;
  write_slices_csv(out, schedule);
  return out.str();
}

std::string circuits_txt(const CircuitSchedule& schedule) {
  std::ostringstream out;
  out.precision(17);
  for (const CircuitAssignment& a : schedule.assignments) {
    out << a.duration << ':';
    for (const Circuit& c : a.circuits) out << ' ' << c.in << "->" << c.out;
    out << '\n';
  }
  return out.str();
}

TEST(TelemetryDeterminism, SingleCoflowSchedulesAreByteIdentical) {
  Rng rng(41);
  for (const int n : {8, 24}) {
    const Matrix demand = testing::random_demand(rng, n, 0.3, 0.5, 10.0);
    std::string off_sin, off_sol;
    {
      ObsState obs_off(false);
      off_sin = circuits_txt(reco_sin(demand, 1e-4));
      off_sol = circuits_txt(solstice(demand));
    }
    std::string on_sin, on_sol;
    {
      ObsState obs_on(true);
      on_sin = circuits_txt(reco_sin(demand, 1e-4));
      on_sol = circuits_txt(solstice(demand));
      EXPECT_GT(obs::tracer().size(), 0u) << "telemetry did not record anything";
    }
    EXPECT_EQ(off_sin, on_sin) << "reco_sin diverged with telemetry on, n=" << n;
    EXPECT_EQ(off_sol, on_sol) << "solstice diverged with telemetry on, n=" << n;
  }
}

TEST(TelemetryDeterminism, RecoMulPipelineIsByteIdentical) {
  Rng rng(42);
  const std::vector<Coflow> coflows = testing::random_workload(rng, 12, 10, 1e-4, 4.0);
  std::string off_csv;
  {
    ObsState obs_off(false);
    off_csv = slices_csv(reco_mul_pipeline(coflows, 1e-4, 4.0).schedule);
  }
  std::string on_csv;
  {
    ObsState obs_on(true);
    on_csv = slices_csv(reco_mul_pipeline(coflows, 1e-4, 4.0).schedule);
    EXPECT_GT(obs::tracer().size(), 0u) << "telemetry did not record anything";
    EXPECT_GT(obs::metrics().counter("reco_mul.calls").value(), 0.0);
  }
  EXPECT_EQ(off_csv, on_csv) << "reco-mul schedule diverged with telemetry on";
}

// PR-8 live telemetry: running the daemon with the sim-time sampler
// ticking on its own event queue AND a live HTTP exporter scraping the
// registry must not move a single byte of the schedule, the digest, the
// makespan, or the reported event count.
TEST(TelemetryDeterminism, OnlineDaemonIsByteIdenticalUnderLiveSampling) {
  Rng rng(44);
  std::vector<Coflow> coflows = testing::random_workload(rng, 10, 8, 1e-4, 4.0);
  for (std::size_t i = 0; i < coflows.size(); ++i) {
    coflows[i].arrival = 2e-3 * static_cast<double>(i);
  }

  struct RunResult {
    std::string slices;
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    Time makespan = 0.0;
  };
  const auto run = [&](bool live) {
    sim::OnlineDaemonOptions options;
    options.core.record_schedule = true;
    options.sample_every = live ? 1e-3 : 0.0;
    std::optional<obs::MetricsHttpServer> server;
    if (live) {
      server.emplace();
      server->start(0);  // scrape target up for the whole run
    }
    sim::OnlineDaemon daemon(OnlinePolicyKind::kDrainReplanRecoMul, options);
    sim::VectorSource source(coflows);
    const sim::OnlineDaemonReport report = daemon.run(source);
    RunResult result;
    result.slices = slices_csv(daemon.core().schedule());
    result.digest = report.digest;
    result.events = report.events;
    result.makespan = report.makespan;
    if (server) server->stop();
    return result;
  };

  RunResult off;
  {
    ObsState obs_off(false);
    off = run(false);
  }
  RunResult on;
  {
    ObsState obs_on(true);
    obs::sim_sampler().clear();
    on = run(true);
    EXPECT_GT(obs::sim_sampler().size(), 0u) << "sim sampler never ticked";
    obs::sim_sampler().clear();
  }
  EXPECT_EQ(off.slices, on.slices) << "daemon schedule diverged under live sampling";
  EXPECT_EQ(off.digest, on.digest);
  EXPECT_EQ(off.events, on.events) << "sampler ticks leaked into the event count";
  EXPECT_DOUBLE_EQ(off.makespan, on.makespan);
}

TEST(TelemetryDeterminism, SequentialMultiIsByteIdentical) {
  Rng rng(43);
  const std::vector<Coflow> coflows = testing::random_workload(rng, 8, 12, 1e-4, 4.0);
  std::string off_csv;
  {
    ObsState obs_off(false);
    off_csv = slices_csv(sebf_solstice(coflows, 1e-4).schedule);
  }
  std::string on_csv;
  {
    ObsState obs_on(true);
    on_csv = slices_csv(sebf_solstice(coflows, 1e-4).schedule);
  }
  EXPECT_EQ(off_csv, on_csv) << "sebf-solstice schedule diverged with telemetry on";
}

}  // namespace
}  // namespace reco
