// Telemetry must be write-only: collection reads pipeline state and
// accumulates numbers, never feeds a decision.  These tests pin that
// contract by running the same scheduling problems with obs enabled and
// disabled and comparing the serialized outputs byte for byte.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/coflow.hpp"
#include "obs/obs.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "stats/csv.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

/// Guard: forces telemetry to a known state and restores + wipes on exit,
/// so a failing assertion can't leak an enabled tracer into other tests.
class ObsState {
 public:
  explicit ObsState(bool on) : was_(obs::enabled()) { obs::set_enabled(on); }
  ~ObsState() {
    obs::set_enabled(was_);
    obs::reset();
  }

 private:
  bool was_;
};

std::string slices_csv(const SliceSchedule& schedule) {
  std::ostringstream out;
  write_slices_csv(out, schedule);
  return out.str();
}

std::string circuits_txt(const CircuitSchedule& schedule) {
  std::ostringstream out;
  out.precision(17);
  for (const CircuitAssignment& a : schedule.assignments) {
    out << a.duration << ':';
    for (const Circuit& c : a.circuits) out << ' ' << c.in << "->" << c.out;
    out << '\n';
  }
  return out.str();
}

TEST(TelemetryDeterminism, SingleCoflowSchedulesAreByteIdentical) {
  Rng rng(41);
  for (const int n : {8, 24}) {
    const Matrix demand = testing::random_demand(rng, n, 0.3, 0.5, 10.0);
    std::string off_sin, off_sol;
    {
      ObsState obs_off(false);
      off_sin = circuits_txt(reco_sin(demand, 1e-4));
      off_sol = circuits_txt(solstice(demand));
    }
    std::string on_sin, on_sol;
    {
      ObsState obs_on(true);
      on_sin = circuits_txt(reco_sin(demand, 1e-4));
      on_sol = circuits_txt(solstice(demand));
      EXPECT_GT(obs::tracer().size(), 0u) << "telemetry did not record anything";
    }
    EXPECT_EQ(off_sin, on_sin) << "reco_sin diverged with telemetry on, n=" << n;
    EXPECT_EQ(off_sol, on_sol) << "solstice diverged with telemetry on, n=" << n;
  }
}

TEST(TelemetryDeterminism, RecoMulPipelineIsByteIdentical) {
  Rng rng(42);
  const std::vector<Coflow> coflows = testing::random_workload(rng, 12, 10, 1e-4, 4.0);
  std::string off_csv;
  {
    ObsState obs_off(false);
    off_csv = slices_csv(reco_mul_pipeline(coflows, 1e-4, 4.0).schedule);
  }
  std::string on_csv;
  {
    ObsState obs_on(true);
    on_csv = slices_csv(reco_mul_pipeline(coflows, 1e-4, 4.0).schedule);
    EXPECT_GT(obs::tracer().size(), 0u) << "telemetry did not record anything";
    EXPECT_GT(obs::metrics().counter("reco_mul.calls").value(), 0.0);
  }
  EXPECT_EQ(off_csv, on_csv) << "reco-mul schedule diverged with telemetry on";
}

TEST(TelemetryDeterminism, SequentialMultiIsByteIdentical) {
  Rng rng(43);
  const std::vector<Coflow> coflows = testing::random_workload(rng, 8, 12, 1e-4, 4.0);
  std::string off_csv;
  {
    ObsState obs_off(false);
    off_csv = slices_csv(sebf_solstice(coflows, 1e-4).schedule);
  }
  std::string on_csv;
  {
    ObsState obs_on(true);
    on_csv = slices_csv(sebf_solstice(coflows, 1e-4).schedule);
  }
  EXPECT_EQ(off_csv, on_csv) << "sebf-solstice schedule diverged with telemetry on";
}

}  // namespace
}  // namespace reco
