#include "bvn/bvn.hpp"

#include <gtest/gtest.h>

#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

class BvnPolicyTest : public ::testing::TestWithParam<BvnPolicy> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, BvnPolicyTest,
                         ::testing::Values(BvnPolicy::kFirstMatching,
                                           BvnPolicy::kMaxMinAmortized,
                                           BvnPolicy::kExactBottleneck,
                                           BvnPolicy::kParallelPeel),
                         [](const auto& info) {
                           switch (info.param) {
                             case BvnPolicy::kFirstMatching: return "FirstMatching";
                             case BvnPolicy::kMaxMinAmortized: return "MaxMinAmortized";
                             case BvnPolicy::kExactBottleneck: return "ExactBottleneck";
                             case BvnPolicy::kParallelPeel: return "ParallelPeel";
                           }
                           return "Unknown";
                         });

TEST_P(BvnPolicyTest, ReconstructsTheMatrixExactly) {
  Rng rng(51);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix m = testing::random_doubly_stochastic(rng, 7, 5, 0.5, 3.0);
    const CircuitSchedule s = bvn_decompose(m, GetParam());
    EXPECT_TRUE(s.is_valid(7)) << "trial " << trial;
    const Matrix service = s.service_matrix(7);
    for (int i = 0; i < 7; ++i) {
      for (int j = 0; j < 7; ++j) {
        EXPECT_NEAR(service.at(i, j), m.at(i, j), 1e-7) << "trial " << trial;
      }
    }
  }
}

TEST_P(BvnPolicyTest, EveryAssignmentIsAFullPermutation) {
  Rng rng(52);
  const Matrix m = testing::random_doubly_stochastic(rng, 6, 4, 1.0, 2.0);
  const CircuitSchedule s = bvn_decompose(m, GetParam());
  for (const auto& a : s.assignments) {
    EXPECT_EQ(a.circuits.size(), 6u);
    EXPECT_TRUE(a.is_matching(6));
    EXPECT_GT(a.duration, 0.0);
  }
}

TEST_P(BvnPolicyTest, AtMostNnzAssignments) {
  Rng rng(53);
  const Matrix m = testing::random_doubly_stochastic(rng, 8, 6, 0.5, 4.0);
  const CircuitSchedule s = bvn_decompose(m, GetParam());
  EXPECT_LE(s.num_assignments(), m.nnz());
}

TEST_P(BvnPolicyTest, PermutationMatrixIsSingleAssignment) {
  Matrix perm(4);
  perm.at(0, 2) = perm.at(1, 0) = perm.at(2, 3) = perm.at(3, 1) = 7.5;
  const CircuitSchedule s = bvn_decompose(perm, GetParam());
  ASSERT_EQ(s.num_assignments(), 1);
  EXPECT_DOUBLE_EQ(s.assignments[0].duration, 7.5);
}

TEST_P(BvnPolicyTest, EmptyMatrixYieldsEmptySchedule) {
  EXPECT_EQ(bvn_decompose(Matrix(5), GetParam()).num_assignments(), 0);
  EXPECT_EQ(bvn_decompose(Matrix(), GetParam()).num_assignments(), 0);
}

TEST(Bvn, RejectsNonDoublyStochastic) {
  const Matrix m = Matrix::from_rows({{1, 2}, {1, 2}});
  EXPECT_THROW(bvn_decompose(m, BvnPolicy::kFirstMatching), std::invalid_argument);
}

TEST(Bvn, GranularInputYieldsGranularCoefficients) {
  // Lemma 1's engine: on a delta-granular doubly stochastic matrix every
  // coefficient is a positive multiple of delta.
  Rng rng(54);
  const double delta = 0.25;
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m = testing::random_demand(rng, 6, 0.5, 0.1, 3.0);
    m = stuff_granular(regularize(m, delta), delta);
    const CircuitSchedule s = bvn_decompose(m, BvnPolicy::kMaxMinAmortized);
    for (const auto& a : s.assignments) {
      EXPECT_GE(a.duration, delta - 1e-9) << "trial " << trial;
      const double k = std::round(a.duration / delta);
      EXPECT_NEAR(a.duration, k * delta, 1e-7) << "trial " << trial;
    }
  }
}

TEST(Bvn, MaxMinExtractsLargeCoefficientsFirst) {
  // A matrix designed so the bottleneck-first order differs from naive
  // peeling: the big diagonal should come out before the small cycle.
  Matrix m(3);
  m.at(0, 0) = m.at(1, 1) = m.at(2, 2) = 10.0;
  m.at(0, 1) = m.at(1, 2) = m.at(2, 0) = 1.0;
  const CircuitSchedule s = bvn_decompose(m, BvnPolicy::kExactBottleneck);
  ASSERT_GE(s.num_assignments(), 2);
  EXPECT_DOUBLE_EQ(s.assignments[0].duration, 10.0);
}

TEST(Bvn, MaxMinAmortizedCoefficientWithinTwiceOfExact) {
  // The amortized policy's power-of-two thresholds guarantee its first
  // coefficient is at least half the exact bottleneck.
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix m = testing::random_doubly_stochastic(rng, 6, 5, 0.5, 4.0);
    const CircuitSchedule exact = bvn_decompose(m, BvnPolicy::kExactBottleneck);
    const CircuitSchedule amortized = bvn_decompose(m, BvnPolicy::kMaxMinAmortized);
    ASSERT_FALSE(exact.assignments.empty());
    ASSERT_FALSE(amortized.assignments.empty());
    EXPECT_GE(amortized.assignments[0].duration, exact.assignments[0].duration / 2.0 - 1e-9)
        << "trial " << trial;
  }
}

TEST(Bvn, MaxMinAmortizedHandlesToleranceScaleMatrix) {
  // Regression: when every surviving entry sits at tolerance scale, the
  // power-of-two start exp2(ceil(log2(max_entry))) lands *below* the
  // support threshold the peel and nnz() agree on, so the matcher scanned
  // sub-tolerance crumbs as real edges.  The start is now clamped to the
  // support threshold; decomposition must terminate and serve the matrix.
  const double crumb = 1.6e-9;  // above kTimeEps, below the 2*kTimeEps support threshold
  Matrix m(3);
  m.at(0, 1) = m.at(1, 2) = m.at(2, 0) = crumb;
  ASSERT_GT(m.nnz(), 0);
  ASSERT_TRUE(m.is_doubly_stochastic(kTimeEps * 3));
  const CircuitSchedule s = bvn_decompose(m, BvnPolicy::kMaxMinAmortized);
  EXPECT_TRUE(s.is_valid(3));
  double served = 0.0;
  for (const auto& a : s.assignments) {
    EXPECT_GT(a.duration, 0.0);
    served += a.duration;
  }
  EXPECT_GE(served, crumb - 1e-12);
}

TEST(Bvn, HandlesStuffedRealDemands) {
  Rng rng(56);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix demand = testing::random_demand(rng, 9, 0.4, 0.2, 6.0);
    const Matrix stuffed = stuff(demand);
    const CircuitSchedule s = bvn_decompose(stuffed, BvnPolicy::kFirstMatching);
    EXPECT_TRUE(s.satisfies(demand)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace reco
