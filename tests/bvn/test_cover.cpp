#include <gtest/gtest.h>

#include "bvn/bvn.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(CoverDecompose, EmptyMatrix) {
  EXPECT_EQ(cover_decompose(Matrix(3)).num_assignments(), 0);
}

TEST(CoverDecompose, SingleEntry) {
  Matrix m(2);
  m.at(0, 1) = 3.0;
  const CircuitSchedule s = cover_decompose(m);
  ASSERT_EQ(s.num_assignments(), 1);
  EXPECT_DOUBLE_EQ(s.assignments[0].duration, 3.0);
}

TEST(CoverDecompose, WorksWithoutBirkhoffStructure) {
  // Not doubly stochastic, not even balanced: bvn_decompose would reject
  // this; cover must handle it.
  const Matrix m = Matrix::from_rows({{5, 1}, {2, 0}});
  const CircuitSchedule s = cover_decompose(m);
  EXPECT_TRUE(s.is_valid(2));
  EXPECT_TRUE(s.satisfies(m));
}

TEST(CoverDecompose, CoversButMayOverServe) {
  const Matrix m = Matrix::from_rows({{5, 0}, {0, 1}});
  const CircuitSchedule s = cover_decompose(m);
  ASSERT_EQ(s.num_assignments(), 1);
  // One matching covering both entries, held to the larger.
  EXPECT_DOUBLE_EQ(s.assignments[0].duration, 5.0);
  EXPECT_TRUE(s.service_matrix(2).covers(m));
}

TEST(CoverDecompose, RoundsBoundedByMaxLineNnz) {
  Rng rng(621);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix m = testing::random_demand(rng, 7, rng.uniform(0.1, 0.9), 0.1, 5.0);
    const CircuitSchedule s = cover_decompose(m);
    EXPECT_TRUE(s.satisfies(m)) << "trial " << trial;
    // Each round zeroes a whole maximum matching.  (An arbitrary maximum
    // matching need not cover every max-degree vertex, so tau rounds is
    // not a hard bound — but it never strays far in practice.)
    EXPECT_LE(s.num_assignments(), 2 * m.tau() + 2) << "trial " << trial;
  }
}

TEST(CoverDecompose, ZeroRowsAndColumnsAreFine) {
  Matrix m(4);
  m.at(1, 2) = 1.0;
  m.at(3, 0) = 2.0;
  const CircuitSchedule s = cover_decompose(m);
  EXPECT_EQ(s.num_assignments(), 1);  // disjoint ports: one matching
  EXPECT_TRUE(s.satisfies(m));
}

}  // namespace
}  // namespace reco
