#include "bvn/stuffing.hpp"

#include <gtest/gtest.h>

#include "bvn/regularization.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(Stuffing, MakesDoublyStochasticAtRho) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {0, 0, 4}, {5, 0, 0}});
  const Matrix s = stuff(m);
  EXPECT_TRUE(s.is_doubly_stochastic(1e-9));
  EXPECT_DOUBLE_EQ(s.row_sum(0), m.rho());
}

TEST(Stuffing, OnlyAddsDemand) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 0}});
  const Matrix s = stuff(m);
  EXPECT_TRUE(s.covers(m));
}

TEST(Stuffing, RespectsExplicitTarget) {
  const Matrix m = Matrix::from_rows({{1, 0}, {0, 1}});
  const Matrix s = stuff(m, 10.0);
  EXPECT_TRUE(s.is_doubly_stochastic(1e-9));
  EXPECT_DOUBLE_EQ(s.row_sum(0), 10.0);
}

TEST(Stuffing, TargetBelowRhoIgnored) {
  const Matrix m = Matrix::from_rows({{5, 0}, {0, 5}});
  const Matrix s = stuff(m, 1.0);
  EXPECT_DOUBLE_EQ(s.row_sum(0), 5.0);
}

TEST(Stuffing, AlreadyStochasticUnchanged) {
  const Matrix m = Matrix::from_rows({{1, 2}, {2, 1}});
  EXPECT_EQ(stuff(m), m);
}

TEST(Stuffing, GranularTargetIsQuantumMultiple) {
  // rho = 250, quantum = 100 -> target 300.
  const Matrix m = Matrix::from_rows({{250, 0}, {0, 100}});
  const Matrix s = stuff_granular(m, 100.0);
  EXPECT_DOUBLE_EQ(s.row_sum(0), 300.0);
  EXPECT_TRUE(s.is_doubly_stochastic(1e-9));
}

TEST(Stuffing, GranularOnRegularizedStaysGranular) {
  // The Reco-Sin invariant: regularized + granular-stuffed => all entries
  // multiples of delta (so all BvN coefficients will be too).
  const Matrix m = Matrix::from_rows({{104, 9, 0}, {3, 0, 107}, {0, 101, 55}});
  const double delta = 100.0;
  const Matrix s = stuff_granular(regularize(m, delta), delta);
  EXPECT_TRUE(s.is_granular(delta, 1e-9));
  EXPECT_TRUE(s.is_doubly_stochastic(1e-9));
}

TEST(Stuffing, RejectsNonPositiveQuantum) {
  EXPECT_THROW(stuff_granular(Matrix(2), 0.0), std::invalid_argument);
}

TEST(Stuffing, RepairsResidualSlackFromToleranceCrumbs) {
  // Regression: every column is short by a *sub*-tolerance crumb (clamped
  // to zero slack individually), while one row is short by the *sum* of
  // the crumbs — a multi-eps deficit.  The greedy fill used to skip all of
  // it via approx_zero and silently return a matrix that is not doubly
  // stochastic at kTimeEps; the repair pass must settle the exact deficit.
  const double crumb = 0.8e-9;  // < kTimeEps, so per-column slack clamps to 0
  const int n = 4;
  Matrix d(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) d.at(i, j) = 0.25;
  }
  for (int j = 0; j < n; ++j) d.at(3, j) = 0.25 - crumb;  // row 3 short by 4 crumbs
  ASSERT_DOUBLE_EQ(d.rho(), 1.0);

  const Matrix s = stuff(d);
  EXPECT_TRUE(s.is_doubly_stochastic(kTimeEps));
  EXPECT_TRUE(s.covers(d));
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(s.row_sum(i), 1.0, kTimeEps) << "row " << i;
    EXPECT_NEAR(s.col_sum(i), 1.0, kTimeEps) << "col " << i;
  }
}

TEST(StuffingProperty, RandomMatricesStuffCorrectly) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix m = testing::random_demand(rng, 10, 0.4, 0.1, 4.0);
    const Matrix s = stuff(m);
    EXPECT_TRUE(s.is_doubly_stochastic(1e-7)) << "trial " << trial;
    EXPECT_TRUE(s.covers(m)) << "trial " << trial;
  }
}

TEST(StuffingProperty, GranularInvariantHoldsOnMicrosecondScale) {
  Rng rng(43);
  const double delta = 100e-6;
  for (int trial = 0; trial < 30; ++trial) {
    const Matrix m = testing::random_demand(rng, 8, 0.6, 4 * delta, 200 * delta);
    const Matrix s = stuff_granular(regularize(m, delta), delta);
    EXPECT_TRUE(s.is_granular(delta, 1e-9)) << "trial " << trial;
    EXPECT_TRUE(s.is_doubly_stochastic(1e-9)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace reco
