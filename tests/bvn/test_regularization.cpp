#include "bvn/regularization.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(Regularization, RoundsUpToQuantum) {
  const Matrix m = Matrix::from_rows({{104, 109}, {2, 0}});
  const Matrix r = regularize(m, 100.0);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 200.0);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 200.0);
  EXPECT_DOUBLE_EQ(r.at(1, 0), 100.0);
  EXPECT_DOUBLE_EQ(r.at(1, 1), 0.0);  // zeros stay zero
}

TEST(Regularization, ExactMultiplesUntouched) {
  const Matrix m = Matrix::from_rows({{300, 0}, {0, 100}});
  const Matrix r = regularize(m, 100.0);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 300.0);
  EXPECT_DOUBLE_EQ(r.at(1, 1), 100.0);
}

TEST(Regularization, PaperFig2Example) {
  const Matrix d_ex = Matrix::from_rows({{104, 109, 102}, {103, 105, 107}, {108, 101, 106}});
  const Matrix r = regularize(d_ex, 100.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(r.at(i, j), 200.0);
  }
}

TEST(Regularization, RejectsNonPositiveQuantum) {
  EXPECT_THROW(regularize(Matrix(2), 0.0), std::invalid_argument);
  EXPECT_THROW(regularize(Matrix(2), -1.0), std::invalid_argument);
}

TEST(Regularization, MicrosecondScaleQuantum) {
  Matrix m(1);
  m.at(0, 0) = 250e-6;
  const Matrix r = regularize(m, 100e-6);
  EXPECT_NEAR(r.at(0, 0), 300e-6, 1e-12);
}

TEST(RegularizationProperty, ResultIsGranularAndCovers) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix m = testing::random_demand(rng, 8, 0.5, 0.01, 5.0);
    const double q = rng.uniform(0.05, 0.5);
    const Matrix r = regularize(m, q);
    EXPECT_TRUE(r.is_granular(q, 1e-9)) << "trial " << trial;
    EXPECT_TRUE(r.covers(m)) << "trial " << trial;
    EXPECT_EQ(r.nnz(), m.nnz()) << "trial " << trial;
    // Per-entry inflation < one quantum.
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        EXPECT_LT(r.at(i, j) - m.at(i, j), q + 1e-9);
      }
    }
  }
}

TEST(RegularizationProperty, OverheadBoundedByNnzTimesQuantum) {
  Rng rng(37);
  for (int trial = 0; trial < 30; ++trial) {
    const Matrix m = testing::random_demand(rng, 6, 0.7, 0.1, 3.0);
    const double q = 0.25;
    const Time overhead = regularization_overhead(m, q);
    EXPECT_GE(overhead, -1e-9);
    EXPECT_LE(overhead, m.nnz() * q + 1e-9);
  }
}

}  // namespace
}  // namespace reco
