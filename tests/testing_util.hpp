// Shared fixtures for the test suite: deterministic random matrices and
// coflows of controlled shape.
#pragma once

#include <vector>

#include "core/coflow.hpp"
#include "core/matrix.hpp"
#include "trace/rng.hpp"

namespace reco::testing {

/// Random demand matrix: each entry nonzero with probability `density`,
/// values uniform in [lo, hi).
inline Matrix random_demand(Rng& rng, int n, double density, double lo, double hi) {
  Matrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.uniform() < density) m.at(i, j) = rng.uniform(lo, hi);
    }
  }
  return m;
}

/// Random doubly stochastic matrix built as a positive combination of
/// random permutation matrices (so Birkhoff structure is guaranteed).
inline Matrix random_doubly_stochastic(Rng& rng, int n, int num_perms, double lo, double hi) {
  Matrix m(n);
  std::vector<int> perm(n);
  for (int p = 0; p < num_perms; ++p) {
    rng.sample_distinct(n, n, perm.data());
    const double coeff = rng.uniform(lo, hi);
    for (int i = 0; i < n; ++i) m.at(i, perm[i]) += coeff;
  }
  return m;
}

/// Random coflow whose every nonzero demand is >= min_demand.
inline Coflow random_coflow(Rng& rng, int id, int n, double density, double min_demand,
                            double max_demand) {
  Coflow c;
  c.id = id;
  c.weight = rng.uniform();
  c.demand = random_demand(rng, n, density, min_demand, max_demand);
  // Guarantee at least one flow so the coflow is non-trivial.
  if (c.demand.nnz() == 0) c.demand.at(rng.uniform_int(n), rng.uniform_int(n)) = min_demand;
  return c;
}

/// A small workload of random coflows with demands >= c_threshold * delta.
inline std::vector<Coflow> random_workload(Rng& rng, int num_coflows, int n, double delta,
                                           double c_threshold) {
  std::vector<Coflow> coflows;
  coflows.reserve(num_coflows);
  const double min_d = c_threshold * delta;
  for (int k = 0; k < num_coflows; ++k) {
    coflows.push_back(random_coflow(rng, k, n, rng.uniform(0.1, 0.9), min_d, min_d * 50.0));
  }
  return coflows;
}

}  // namespace reco::testing
