#include "core/slice.hpp"

#include <gtest/gtest.h>

namespace reco {
namespace {

Coflow make_coflow(CoflowId id, const Matrix& demand) {
  Coflow c;
  c.id = id;
  c.demand = demand;
  return c;
}

TEST(Slice, DurationAndEquality) {
  const FlowSlice s{1.0, 3.5, 0, 1, 2};
  EXPECT_DOUBLE_EQ(s.duration(), 2.5);
  EXPECT_EQ(s, (FlowSlice{1.0, 3.5, 0, 1, 2}));
}

TEST(Slice, PortFeasibleWhenDisjointInTime) {
  const SliceSchedule sched{{0, 1, 0, 0, 0}, {1, 2, 0, 0, 1}};
  EXPECT_TRUE(is_port_feasible(sched));
}

TEST(Slice, PortInfeasibleOnIngressOverlap) {
  const SliceSchedule sched{{0, 2, 0, 0, 0}, {1, 3, 0, 1, 1}};
  EXPECT_FALSE(is_port_feasible(sched));
}

TEST(Slice, PortInfeasibleOnEgressOverlap) {
  const SliceSchedule sched{{0, 2, 0, 1, 0}, {1, 3, 1, 1, 1}};
  EXPECT_FALSE(is_port_feasible(sched));
}

TEST(Slice, DifferentPortsMayOverlap) {
  const SliceSchedule sched{{0, 2, 0, 0, 0}, {0, 2, 1, 1, 1}};
  EXPECT_TRUE(is_port_feasible(sched));
}

TEST(Slice, BackwardsSliceInfeasible) {
  const SliceSchedule sched{{2, 1, 0, 0, 0}};
  EXPECT_FALSE(is_port_feasible(sched));
}

TEST(Slice, SatisfiesDemandsExactly) {
  const auto coflows = std::vector<Coflow>{make_coflow(0, Matrix::from_rows({{0, 3}, {0, 0}}))};
  EXPECT_TRUE(satisfies_demands({{0, 2, 0, 1, 0}, {5, 6, 0, 1, 0}}, coflows));
  EXPECT_FALSE(satisfies_demands({{0, 2, 0, 1, 0}}, coflows));          // under
  EXPECT_FALSE(satisfies_demands({{0, 4, 0, 1, 0}}, coflows));          // over
  EXPECT_FALSE(satisfies_demands({{0, 3, 1, 0, 0}}, coflows));          // wrong flow
}

TEST(Slice, CompletionTimesPerCoflow) {
  const SliceSchedule sched{{0, 2, 0, 0, 0}, {1, 5, 1, 1, 0}, {0, 3, 2, 2, 1}};
  const std::vector<Time> cct = completion_times(sched, 3);
  EXPECT_DOUBLE_EQ(cct[0], 5.0);
  EXPECT_DOUBLE_EQ(cct[1], 3.0);
  EXPECT_DOUBLE_EQ(cct[2], 0.0);  // no slices
}

TEST(Slice, TotalWeightedCct) {
  std::vector<Coflow> coflows{make_coflow(0, Matrix(1)), make_coflow(1, Matrix(1))};
  coflows[0].weight = 2.0;
  coflows[1].weight = 0.5;
  EXPECT_DOUBLE_EQ(total_weighted_cct({4.0, 8.0}, coflows), 2.0 * 4.0 + 0.5 * 8.0);
}

TEST(Slice, StartBatchesDeduplicates) {
  const SliceSchedule sched{{0, 1, 0, 0, 0}, {0, 2, 1, 1, 0}, {5, 6, 0, 0, 0}};
  const std::vector<Time> batches = start_batches(sched);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_DOUBLE_EQ(batches[0], 0.0);
  EXPECT_DOUBLE_EQ(batches[1], 5.0);
}

TEST(Slice, MakespanIsMaxEnd) {
  EXPECT_DOUBLE_EQ(makespan({{0, 7, 0, 0, 0}, {1, 3, 1, 1, 0}}), 7.0);
  EXPECT_DOUBLE_EQ(makespan({}), 0.0);
}

}  // namespace
}  // namespace reco
