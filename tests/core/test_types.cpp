#include "core/types.hpp"

#include <gtest/gtest.h>

namespace reco {
namespace {

TEST(Types, ApproxZero) {
  EXPECT_TRUE(approx_zero(0.0));
  EXPECT_TRUE(approx_zero(kTimeEps / 2));
  EXPECT_TRUE(approx_zero(-kTimeEps / 2));
  EXPECT_FALSE(approx_zero(kTimeEps * 2));
  EXPECT_FALSE(approx_zero(-kTimeEps * 2));
}

TEST(Types, ApproxEq) {
  EXPECT_TRUE(approx_eq(1.0, 1.0));
  EXPECT_TRUE(approx_eq(1.0, 1.0 + kTimeEps / 2));
  EXPECT_FALSE(approx_eq(1.0, 1.0 + 10 * kTimeEps));
}

TEST(Types, ApproxLe) {
  EXPECT_TRUE(approx_le(1.0, 2.0));
  EXPECT_TRUE(approx_le(1.0, 1.0));
  EXPECT_TRUE(approx_le(1.0 + kTimeEps / 2, 1.0));
  EXPECT_FALSE(approx_le(1.1, 1.0));
}

TEST(Types, ClampZero) {
  EXPECT_DOUBLE_EQ(clamp_zero(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp_zero(kTimeEps / 3), 0.0);
  EXPECT_DOUBLE_EQ(clamp_zero(-kTimeEps / 3), 0.0);
  EXPECT_DOUBLE_EQ(clamp_zero(-0.5), -0.5);  // real negatives pass through
}

TEST(Types, ScalesAreOrdered) {
  // The numerical contract: comparison eps << service quantum << any delta
  // used in the experiments (>= 1 us).
  EXPECT_LT(kTimeEps, kMinServiceQuantum);
  EXPECT_LT(kMinServiceQuantum, 1e-6);
}

}  // namespace
}  // namespace reco
