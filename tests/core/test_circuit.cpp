#include "core/circuit.hpp"

#include <gtest/gtest.h>

namespace reco {
namespace {

TEST(CircuitAssignment, ValidMatching) {
  const CircuitAssignment a{{{0, 1}, {1, 0}}, 5.0};
  EXPECT_TRUE(a.is_matching(2));
}

TEST(CircuitAssignment, RejectsSharedIngress) {
  const CircuitAssignment a{{{0, 0}, {0, 1}}, 1.0};
  EXPECT_FALSE(a.is_matching(2));
}

TEST(CircuitAssignment, RejectsSharedEgress) {
  const CircuitAssignment a{{{0, 1}, {1, 1}}, 1.0};
  EXPECT_FALSE(a.is_matching(2));
}

TEST(CircuitAssignment, RejectsOutOfRangePorts) {
  const CircuitAssignment a{{{0, 5}}, 1.0};
  EXPECT_FALSE(a.is_matching(2));
  const CircuitAssignment b{{{-1, 0}}, 1.0};
  EXPECT_FALSE(b.is_matching(2));
}

TEST(CircuitSchedule, PlannedTransmissionTime) {
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, 2.0});
  s.assignments.push_back({{{1, 1}}, 3.5});
  EXPECT_DOUBLE_EQ(s.planned_transmission_time(), 5.5);
  EXPECT_EQ(s.num_assignments(), 2);
}

TEST(CircuitSchedule, ValidityChecksEveryAssignment) {
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}, {1, 1}}, 1.0});
  EXPECT_TRUE(s.is_valid(2));
  s.assignments.push_back({{{0, 0}, {1, 0}}, 1.0});  // egress clash
  EXPECT_FALSE(s.is_valid(2));
}

TEST(CircuitSchedule, NegativeDurationInvalid) {
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, -1.0});
  EXPECT_FALSE(s.is_valid(1));
}

TEST(CircuitSchedule, ServiceMatrixAccumulates) {
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}, {1, 0}}, 2.0});
  s.assignments.push_back({{{0, 1}}, 3.0});
  const Matrix service = s.service_matrix(2);
  EXPECT_DOUBLE_EQ(service.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(service.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(service.at(0, 0), 0.0);
}

TEST(CircuitSchedule, SatisfiesDemand) {
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}, {1, 0}}, 2.0});
  EXPECT_TRUE(s.satisfies(Matrix::from_rows({{0, 2}, {2, 0}})));
  EXPECT_TRUE(s.satisfies(Matrix::from_rows({{0, 1}, {2, 0}})));   // over-service ok
  EXPECT_FALSE(s.satisfies(Matrix::from_rows({{0, 3}, {2, 0}})));  // under-service
}

TEST(CircuitSchedule, ToStringMentionsCircuits) {
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}}, 2.0});
  EXPECT_NE(s.to_string().find("0->1"), std::string::npos);
}

}  // namespace
}  // namespace reco
