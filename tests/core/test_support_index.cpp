#include "core/support_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

std::vector<int> to_vector(const SupportSpan& s) { return {s.begin(), s.end()}; }

/// Check every index invariant against the dense matrix it wraps.
void expect_index_consistent(const SupportIndex& idx, double sum_tol = 1e-9) {
  const Matrix& m = idx.matrix();
  const int n = idx.n();
  int nnz = 0;
  for (int i = 0; i < n; ++i) {
    std::vector<int> expected;
    for (int j = 0; j < n; ++j) {
      if (m.at(i, j) != 0.0) expected.push_back(j);
    }
    nnz += static_cast<int>(expected.size());
    EXPECT_EQ(to_vector(idx.row_support(i)), expected) << "row " << i;
    EXPECT_EQ(idx.row_nnz(i), static_cast<int>(expected.size()));
    EXPECT_NEAR(idx.row_sum(i), m.row_sum(i), sum_tol) << "row " << i;
    EXPECT_DOUBLE_EQ(idx.row_sum_exact(i), m.row_sum(i)) << "row " << i;
    // SoA value mirror: row_values must track the dense entries exactly.
    const auto vals = idx.row_values(i);
    ASSERT_EQ(vals.size(), idx.row_support(i).size());
    for (int k = 0; k < vals.size(); ++k) {
      EXPECT_EQ(vals[k], m.at(i, idx.row_support(i)[k])) << "row " << i << " slot " << k;
    }
  }
  for (int j = 0; j < n; ++j) {
    std::vector<int> expected;
    for (int i = 0; i < n; ++i) {
      if (m.at(i, j) != 0.0) expected.push_back(i);
    }
    EXPECT_EQ(to_vector(idx.col_support(j)), expected) << "col " << j;
    EXPECT_EQ(idx.col_nnz(j), static_cast<int>(expected.size()));
    EXPECT_NEAR(idx.col_sum(j), m.col_sum(j), sum_tol) << "col " << j;
    EXPECT_DOUBLE_EQ(idx.col_sum_exact(j), m.col_sum(j)) << "col " << j;
  }
  EXPECT_EQ(idx.nnz(), nnz);
  EXPECT_EQ(idx.nnz(), m.nnz());
  EXPECT_NEAR(idx.rho(), m.rho(), sum_tol);
  EXPECT_EQ(idx.tau(), m.tau());
  EXPECT_DOUBLE_EQ(idx.max_entry(), m.max_entry());
}

TEST(SupportIndex, BuildsFromMatrix) {
  const SupportIndex idx(Matrix::from_rows({{2, 0, 1}, {0, 0, 3}, {4, 5, 0}}));
  EXPECT_EQ(idx.nnz(), 5);
  EXPECT_EQ(to_vector(idx.row_support(0)), (std::vector<int>{0, 2}));
  EXPECT_EQ(to_vector(idx.row_support(1)), (std::vector<int>{2}));
  EXPECT_EQ(to_vector(idx.col_support(2)), (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(idx.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(idx.col_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(idx.rho(), 9.0);  // row 2 sums to 9
  EXPECT_EQ(idx.tau(), 2);
  EXPECT_DOUBLE_EQ(idx.max_entry(), 5.0);
  expect_index_consistent(idx);
}

TEST(SupportIndex, ZerosSkipsIngestScan) {
  SupportIndex idx = SupportIndex::zeros(4);
  EXPECT_EQ(idx.n(), 4);
  EXPECT_EQ(idx.nnz(), 0);
  EXPECT_DOUBLE_EQ(idx.rho(), 0.0);
  idx.set(1, 2, 3.5);
  EXPECT_EQ(idx.nnz(), 1);
  EXPECT_DOUBLE_EQ(idx.at(1, 2), 3.5);
  expect_index_consistent(idx);
}

TEST(SupportIndex, SetMaintainsSupportTransitions) {
  SupportIndex idx = SupportIndex::zeros(3);
  idx.set(0, 0, 1.0);   // enter
  idx.set(0, 0, 2.0);   // stay (value change only)
  EXPECT_EQ(idx.nnz(), 1);
  EXPECT_DOUBLE_EQ(idx.row_sum(0), 2.0);
  idx.set(0, 0, 0.0);   // leave
  EXPECT_EQ(idx.nnz(), 0);
  EXPECT_TRUE(idx.row_support(0).empty());
  EXPECT_TRUE(idx.col_support(0).empty());
  expect_index_consistent(idx);
}

TEST(SupportIndex, SetSnapsSubToleranceToExactZero) {
  SupportIndex idx = SupportIndex::zeros(2);
  idx.set(0, 1, 0.5 * kTimeEps);  // below tolerance: must not enter support
  EXPECT_EQ(idx.nnz(), 0);
  EXPECT_EQ(idx.at(0, 1), 0.0);
  idx.set(0, 1, 1.0);
  idx.set(0, 1, 0.5 * kTimeEps);  // shrink below tolerance: must leave
  EXPECT_EQ(idx.nnz(), 0);
  EXPECT_EQ(idx.at(0, 1), 0.0);
  expect_index_consistent(idx);
}

TEST(SupportIndex, IngestSnapsCrumbs) {
  Matrix m(2);
  m.at(0, 0) = 5.0;
  m.at(1, 1) = 0.25 * kTimeEps;  // ingest crumb
  const SupportIndex idx(std::move(m));
  EXPECT_EQ(idx.nnz(), 1);
  EXPECT_EQ(idx.at(1, 1), 0.0);
}

TEST(SupportIndex, ReleaseMovesMatrixOut) {
  SupportIndex idx(Matrix::from_rows({{1, 0}, {0, 2}}));
  const Matrix m = idx.release();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_TRUE(idx.empty());
}

TEST(SupportIndex, AddAccumulates) {
  SupportIndex idx = SupportIndex::zeros(2);
  idx.add(1, 0, 2.0);
  idx.add(1, 0, 3.0);
  EXPECT_DOUBLE_EQ(idx.at(1, 0), 5.0);
  idx.add(1, 0, -5.0);
  EXPECT_EQ(idx.nnz(), 0);
  expect_index_consistent(idx);
}

TEST(SupportIndexProperty, LongMutationSequencesStayConsistent) {
  // The satellite requirement: incremental sums / tau / rho must match
  // from-scratch recomputation after long mutation sequences.
  Rng rng(20190707);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 4 + static_cast<int>(rng.uniform_int(13));  // 4..16
    SupportIndex idx(testing::random_demand(rng, n, rng.uniform(0.05, 1.0), 0.5, 10.0));
    for (int step = 0; step < 500; ++step) {
      const int i = static_cast<int>(rng.uniform_int(n));
      const int j = static_cast<int>(rng.uniform_int(n));
      switch (rng.uniform_int(4)) {
        case 0: idx.set(i, j, rng.uniform(0.5, 10.0)); break;           // write
        case 1: idx.set(i, j, 0.0); break;                              // clear
        case 2: idx.add(i, j, rng.uniform(0.0, 2.0)); break;            // grow
        default: idx.set(i, j, clamp_zero(idx.at(i, j) - 0.75)); break; // peel-style shrink
      }
    }
    expect_index_consistent(idx, 1e-7);
  }
}

TEST(SupportIndexProperty, PeelStyleDrainStaysConsistent) {
  // Repeatedly subtract each row's minimum from every entry of the row —
  // the mutation pattern of BvN peeling (the min zeroes, the rest shrink)
  // — until the matrix drains, checking index consistency as it goes.
  Rng rng(42);
  SupportIndex idx(testing::random_demand(rng, 8, 0.4, 1.0, 4.0));
  int round = 0;
  while (idx.nnz() > 0) {
    for (int i = 0; i < idx.n(); ++i) {
      if (idx.row_nnz(i) == 0) continue;
      const std::vector<int> support = to_vector(idx.row_support(i));  // snapshot: sets erase
      double coefficient = idx.at(i, support.front());
      for (const int j : support) coefficient = std::min(coefficient, idx.at(i, j));
      for (const int j : support) idx.set(i, j, clamp_zero(idx.at(i, j) - coefficient));
    }
    if (++round % 3 == 0) expect_index_consistent(idx, 1e-7);
    ASSERT_LT(round, 1000) << "drain did not terminate";
  }
  expect_index_consistent(idx);
}

}  // namespace
}  // namespace reco
