#include "core/lower_bound.hpp"

#include <gtest/gtest.h>

namespace reco {
namespace {

TEST(LowerBound, RhoPlusTauDelta) {
  // rho = 7 (col 2), tau = 3 (row 0).
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {0, 0, 4}, {5, 0, 0}});
  EXPECT_DOUBLE_EQ(single_coflow_lower_bound(m, 0.5), 7.0 + 3 * 0.5);
}

TEST(LowerBound, EmptyMatrixIsZero) {
  EXPECT_DOUBLE_EQ(single_coflow_lower_bound(Matrix(4), 0.1), 0.0);
}

TEST(LowerBound, SingleFlow) {
  Matrix m(3);
  m.at(1, 2) = 10.0;
  // One flow: needs one establishment and its own transmission time.
  EXPECT_DOUBLE_EQ(single_coflow_lower_bound(m, 0.25), 10.25);
}

TEST(LowerBound, ZeroDeltaReducesToRho) {
  const Matrix m = Matrix::from_rows({{2, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(single_coflow_lower_bound(m, 0.0), 3.0);
}

}  // namespace
}  // namespace reco
