#include "core/coflow.hpp"

#include <gtest/gtest.h>

namespace reco {
namespace {

Coflow make(const Matrix& demand) {
  Coflow c;
  c.id = 0;
  c.demand = demand;
  return c;
}

TEST(Coflow, WidthCounts) {
  const Coflow c = make(Matrix::from_rows({{1, 0, 0}, {2, 0, 3}, {0, 0, 0}}));
  EXPECT_EQ(c.width_in(), 2);   // rows 0 and 1
  EXPECT_EQ(c.width_out(), 2);  // cols 0 and 2
}

TEST(Coflow, ModeS2S) {
  const Coflow c = make(Matrix::from_rows({{0, 0}, {5, 0}}));
  EXPECT_EQ(c.mode(), TransmissionMode::kS2S);
}

TEST(Coflow, ModeS2M) {
  const Coflow c = make(Matrix::from_rows({{1, 2}, {0, 0}}));
  EXPECT_EQ(c.mode(), TransmissionMode::kS2M);
}

TEST(Coflow, ModeM2S) {
  const Coflow c = make(Matrix::from_rows({{1, 0}, {2, 0}}));
  EXPECT_EQ(c.mode(), TransmissionMode::kM2S);
}

TEST(Coflow, ModeM2M) {
  const Coflow c = make(Matrix::from_rows({{1, 0}, {0, 2}}));
  EXPECT_EQ(c.mode(), TransmissionMode::kM2M);
}

TEST(Coflow, DensityThresholdsMatchTableI) {
  EXPECT_EQ(classify_density(0.01), DensityClass::kSparse);
  EXPECT_EQ(classify_density(0.05), DensityClass::kSparse);   // boundary inclusive
  EXPECT_EQ(classify_density(0.0501), DensityClass::kNormal);
  EXPECT_EQ(classify_density(0.5), DensityClass::kNormal);    // boundary inclusive
  EXPECT_EQ(classify_density(0.51), DensityClass::kDense);
}

TEST(Coflow, DensityClassUsesMatrixDensity) {
  Matrix m(10);  // 100 cells
  for (int i = 0; i < 10; ++i) m.at(i, i) = 1.0;  // 10 nonzeros -> DS = 0.1
  EXPECT_EQ(make(m).density_class(), DensityClass::kNormal);
}

TEST(Coflow, VolumeAndBottleneck) {
  const Coflow c = make(Matrix::from_rows({{3, 1}, {0, 2}}));
  EXPECT_DOUBLE_EQ(c.total_volume(), 6.0);
  EXPECT_DOUBLE_EQ(c.bottleneck(), 4.0);  // row 0 sum
}

TEST(Coflow, EnumToString) {
  EXPECT_EQ(to_string(TransmissionMode::kM2M), "M2M");
  EXPECT_EQ(to_string(DensityClass::kSparse), "sparse");
}

TEST(Coflow, IndicesOfClass) {
  std::vector<Coflow> coflows;
  Matrix dense(2);
  dense.at(0, 0) = dense.at(0, 1) = dense.at(1, 0) = 1.0;  // DS = 0.75
  Matrix sparse(10);
  sparse.at(0, 0) = 1.0;  // DS = 0.01
  coflows.push_back(make(dense));
  coflows.push_back(make(sparse));
  EXPECT_EQ(indices_of_class(coflows, DensityClass::kDense), (std::vector<int>{0}));
  EXPECT_EQ(indices_of_class(coflows, DensityClass::kSparse), (std::vector<int>{1}));
  EXPECT_TRUE(indices_of_class(coflows, DensityClass::kNormal).empty());
}

}  // namespace
}  // namespace reco
