#include "core/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.n(), 0);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_DOUBLE_EQ(m.total(), 0.0);
}

TEST(Matrix, ZeroConstructed) {
  Matrix m(4);
  EXPECT_EQ(m.n(), 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_DOUBLE_EQ(m.rho(), 0.0);
  EXPECT_EQ(m.tau(), 0);
}

TEST(Matrix, FromRowsAndAccess) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.n(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.total(), 10.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW((Matrix::from_rows({{1.0}, {2.0, 3.0}})), std::invalid_argument);
}

TEST(Matrix, RowColSums) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {0, 0, 4}, {5, 0, 0}});
  EXPECT_DOUBLE_EQ(m.row_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 4.0);
  EXPECT_DOUBLE_EQ(m.col_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(m.col_sum(2), 7.0);
}

TEST(Matrix, RhoIsMaxRowOrColSum) {
  // Column 2 dominates: 3 + 4 = 7.
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {0, 0, 4}, {5, 0, 0}});
  EXPECT_DOUBLE_EQ(m.rho(), 7.0);
}

TEST(Matrix, TauIsMaxNnzPerLine) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {0, 0, 4}, {5, 0, 0}});
  EXPECT_EQ(m.tau(), 3);  // row 0 has three nonzeros
  const Matrix col_heavy = Matrix::from_rows({{1, 0}, {1, 0}});
  EXPECT_EQ(col_heavy.tau(), 2);  // column 0
}

TEST(Matrix, NnzIgnoresTolerance) {
  Matrix m(2);
  m.at(0, 0) = kTimeEps / 2;
  m.at(1, 1) = 1.0;
  EXPECT_EQ(m.nnz(), 1);
}

TEST(Matrix, Density) {
  const Matrix m = Matrix::from_rows({{1, 0}, {0, 1}});
  EXPECT_DOUBLE_EQ(m.density(), 0.5);
}

TEST(Matrix, MaxEntryMinNonzero) {
  const Matrix m = Matrix::from_rows({{0, 5}, {2, 0}});
  EXPECT_DOUBLE_EQ(m.max_entry(), 5.0);
  EXPECT_DOUBLE_EQ(m.min_nonzero(), 2.0);
  EXPECT_DOUBLE_EQ(Matrix(3).min_nonzero(), 0.0);
}

TEST(Matrix, DoublyStochasticCheck) {
  const Matrix ds = Matrix::from_rows({{1, 2}, {2, 1}});
  EXPECT_TRUE(ds.is_doubly_stochastic());
  const Matrix not_ds = Matrix::from_rows({{1, 2}, {1, 2}});
  EXPECT_FALSE(not_ds.is_doubly_stochastic());
}

TEST(Matrix, GranularCheck) {
  const Matrix g = Matrix::from_rows({{100, 200}, {0, 300}});
  EXPECT_TRUE(g.is_granular(100.0));
  EXPECT_FALSE(g.is_granular(70.0));
  EXPECT_FALSE(g.is_granular(0.0));
}

TEST(Matrix, CoversIsEntrywise) {
  const Matrix big = Matrix::from_rows({{2, 2}, {2, 2}});
  const Matrix small = Matrix::from_rows({{1, 2}, {0, 2}});
  EXPECT_TRUE(big.covers(small));
  EXPECT_FALSE(small.covers(big));
  EXPECT_FALSE(big.covers(Matrix(3)));  // size mismatch
}

TEST(Matrix, PlusMinus) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{1, 1}, {1, 1}});
  a += b;
  EXPECT_DOUBLE_EQ(a.at(1, 1), 5.0);
  a -= b;
  a -= Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_EQ(a.nnz(), 0);  // subtraction snaps round-off to zero
}

TEST(Matrix, ArithmeticSizeMismatchThrows) {
  Matrix a(2);
  const Matrix b(3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matrix, ToStringContainsEntries) {
  const Matrix m = Matrix::from_rows({{1.5, 0}, {0, 2.5}});
  const std::string s = m.to_string();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(MatrixProperty, RandomDoublyStochasticHasEqualSums) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix m = testing::random_doubly_stochastic(rng, 6, 4, 0.5, 3.0);
    EXPECT_TRUE(m.is_doubly_stochastic(1e-9));
    EXPECT_NEAR(m.row_sum(0) * 6, m.total(), 1e-6);
  }
}

}  // namespace
}  // namespace reco
