// Time-series sampler: windowed counter rates and histogram-delta
// percentiles against exact references, ring bounds, and the JSON dump.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"

namespace reco::obs {
namespace {

/// Wipes the global registry before and after so sampler tests see only
/// their own metrics.
class FreshRegistry {
 public:
  FreshRegistry() { obs::reset(); }
  ~FreshRegistry() { obs::reset(); }
};

/// Evenly spaced upper bounds: width, 2*width, ..., n*width.
std::vector<double> even_buckets(double width, int n) {
  std::vector<double> bounds(n);
  for (int k = 0; k < n; ++k) bounds[k] = width * (k + 1);
  return bounds;
}

/// Exact reference: the q-quantile position over the sorted sample set,
/// matched to quantile_from_buckets' cumulative-count convention.
double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const double target = q * static_cast<double>(xs.size());
  const std::size_t idx =
      std::min(xs.size() - 1,
               static_cast<std::size_t>(std::max(0.0, std::ceil(target) - 1.0)));
  return xs[idx];
}

TEST(QuantileFromBuckets, InterpolatesWithinTheHitBucket) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0};
  // counts: one per bound + overflow.  50 obs in (1, 2], 50 in (2, 4].
  const std::uint64_t counts[] = {0, 50, 50, 0, 0};
  EXPECT_NEAR(quantile_from_buckets(bounds, counts, 0.25, 1.0, 4.0), 1.5, 1e-12);
  EXPECT_NEAR(quantile_from_buckets(bounds, counts, 0.5, 1.0, 4.0), 2.0, 1e-12);
  EXPECT_NEAR(quantile_from_buckets(bounds, counts, 0.75, 1.0, 4.0), 3.0, 1e-12);
  EXPECT_NEAR(quantile_from_buckets(bounds, counts, 1.0, 1.0, 4.0), 4.0, 1e-12);
}

TEST(QuantileFromBuckets, ClampsToObservedRangeAndHandlesEmpty) {
  const std::vector<double> bounds = {1.0, 2.0};
  const std::uint64_t empty[] = {0, 0, 0};
  EXPECT_DOUBLE_EQ(quantile_from_buckets(bounds, empty, 0.5, 0.0, -1.0), 0.0);
  // A single observation of 1.7 in (1, 2]: every quantile must be 1.7.
  const std::uint64_t one[] = {0, 1, 0};
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile_from_buckets(bounds, one, q, 1.7, 1.7), 1.7) << "q=" << q;
  }
}

TEST(HistogramQuantile, TracksExactReferenceWithinBucketWidth) {
  FreshRegistry fresh;
  Histogram& h = metrics().histogram("ts.test.latency", even_buckets(10.0, 100));
  std::vector<double> xs;
  // Deterministic skewed stream: most mass low, a heavy tail.
  for (int i = 0; i < 900; ++i) xs.push_back(5.0 + 0.05 * (i % 100));
  for (int i = 0; i < 100; ++i) xs.push_back(400.0 + 3.0 * i);
  for (const double x : xs) h.observe(x);
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = exact_quantile(xs, q);
    // Within one bucket width (10.0) of the exact order statistic.
    EXPECT_NEAR(h.quantile(q), exact, 10.0) << "q=" << q;
    EXPECT_GE(h.quantile(q), h.min());
    EXPECT_LE(h.quantile(q), h.max());
  }
}

TEST(TimeSeriesSampler, WindowRatesMatchExactDeltas) {
  FreshRegistry fresh;
  Counter& c = metrics().counter("ts.test.events");
  TimeSeriesSampler sampler("test");
  sampler.sample(0.0);  // delta base
  c.inc(10.0);
  sampler.sample(2.0);  // window [0, 2]: 10 events -> 5/s
  c.inc(30.0);
  sampler.sample(4.0);  // window [2, 4]: 30 events -> 15/s

  const std::vector<SamplePoint> series = sampler.series();
  ASSERT_EQ(series.size(), 3u);
  const auto rate_of = [](const SamplePoint& p, const std::string& name) {
    for (const WindowStat& w : p.stats) {
      if (w.name == name) return w.rate;
    }
    ADD_FAILURE() << name << " missing from sample";
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(rate_of(series[0], "ts.test.events"), 0.0);  // no window yet
  EXPECT_DOUBLE_EQ(rate_of(series[1], "ts.test.events"), 5.0);
  EXPECT_DOUBLE_EQ(rate_of(series[2], "ts.test.events"), 15.0);
  EXPECT_DOUBLE_EQ(series[2].window, 2.0);
  EXPECT_DOUBLE_EQ(sampler.latest().t, 4.0);
}

TEST(TimeSeriesSampler, WindowPercentilesCoverOnlyTheWindow) {
  FreshRegistry fresh;
  Histogram& h = metrics().histogram("ts.test.lat_us", even_buckets(1.0, 200));
  TimeSeriesSampler sampler("test");
  // Window 1: 100 observations around 10us.
  for (int i = 0; i < 100; ++i) h.observe(10.0 + 0.001 * i);
  sampler.sample(1.0);
  // Window 2: 100 observations around 100us.  Its percentiles must reflect
  // ONLY these, not the lifetime mix.
  std::vector<double> w2;
  for (int i = 0; i < 100; ++i) w2.push_back(100.0 + 0.001 * i);
  for (const double x : w2) h.observe(x);
  sampler.sample(2.0);

  const SamplePoint latest = sampler.latest();
  const WindowStat* stat = nullptr;
  for (const WindowStat& w : latest.stats) {
    if (w.name == "ts.test.lat_us") stat = &w;
  }
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->window_count, 100u);
  EXPECT_DOUBLE_EQ(stat->rate, 100.0);
  for (const double p : {stat->p50, stat->p90, stat->p99}) {
    EXPECT_NEAR(p, exact_quantile(w2, 0.5), 2.0);  // all of w2 sits in ~2 buckets
  }
  EXPECT_LE(stat->p50, stat->p90);
  EXPECT_LE(stat->p90, stat->p99);
}

TEST(TimeSeriesSampler, RingIsBoundedAndOrderedOldestToNewest) {
  FreshRegistry fresh;
  TimeSeriesSampler sampler("test", 4);
  for (int i = 0; i < 10; ++i) sampler.sample(static_cast<double>(i));
  EXPECT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.total_samples(), 10u);
  const std::vector<SamplePoint> series = sampler.series();
  ASSERT_EQ(series.size(), 4u);
  for (std::size_t k = 0; k < series.size(); ++k) {
    EXPECT_DOUBLE_EQ(series[k].t, 6.0 + static_cast<double>(k));
  }
  sampler.clear();
  EXPECT_EQ(sampler.size(), 0u);
  EXPECT_TRUE(sampler.latest().stats.empty());
}

TEST(TimeSeriesSampler, WriteJsonIsStructurallySound) {
  FreshRegistry fresh;
  metrics().counter("ts.test.c").inc(3.0);
  metrics().histogram("ts.test.h", even_buckets(1.0, 4)).observe(2.5);
  TimeSeriesSampler sampler("test");
  sampler.sample(0.0);
  sampler.sample(1.0);
  std::ostringstream out;
  sampler.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"timeline\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ts.test.c\""), std::string::npos);
  EXPECT_NE(json.find("\"window_count\""), std::string::npos);
  // Balanced braces/brackets — cheap structural validity without a parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(SyncTraceDropped, SurfacesTracerDropsAsACounter) {
  FreshRegistry fresh;
  obs::set_enabled(true);
  tracer().clear();
  sync_trace_dropped();  // fold any pre-test drops, then zero the counter
  metrics().counter("obs.trace.dropped_events").reset();
  const std::uint64_t base = tracer().dropped();
  const std::size_t old_cap = tracer().capacity();
  tracer().set_capacity(0);  // every record from here on drops
  tracer().instant("drop-me", "test");
  tracer().instant("drop-me-too", "test");
  tracer().set_capacity(old_cap);
  sync_trace_dropped();
  EXPECT_DOUBLE_EQ(metrics().counter("obs.trace.dropped_events").value(),
                   static_cast<double>(tracer().dropped() - base));
  EXPECT_GE(tracer().dropped() - base, 2u);
  obs::set_enabled(false);
}

}  // namespace
}  // namespace reco::obs
