// Tracer: Chrome trace-event JSON shape (validated with a minimal JSON
// parser, the same grammar python -m json.tool accepts), wall/sim
// timeline mapping, metadata records, capacity/drop accounting, string
// escaping, and concurrent recording from the runtime pool (the TSan CI
// job runs this suite at RECO_THREADS=8).
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace reco::obs {
namespace {

/// Minimal recursive-descent JSON parser: accepts exactly the RFC 8259
/// value grammar, returns false on any syntax error.  Enough to prove the
/// tracer's output is loadable; Perfetto-level semantics are asserted via
/// substring checks on top.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + k >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_ + k]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (peek() != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string dump(const Tracer& t) {
  std::ostringstream out;
  t.write_chrome_json(out);
  return out.str();
}

TEST(Tracer, EmptyTraceIsValidJsonWithProcessMetadata) {
  Tracer t;
  const std::string json = dump(t);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("wall clock (pipeline)"), std::string::npos);
  EXPECT_NE(json.find("simulated time (fabric)"), std::string::npos);
}

TEST(Tracer, RoundTripsEventFields) {
  Tracer t;
  const auto start = Tracer::Clock::now();
  t.complete("bvn.peel", "bvn", start, start + std::chrono::microseconds(250),
             {{"nnz", 42.0}, {"coefficient", 0.5}});
  t.instant("round", "bvn");
  t.sim_span("coflow 3", "sim.coflow", 0.001, 0.005, 3, {{"cct", 0.004}});
  t.sim_instant("circuit.establish", "sim.circuit", 0.002, -1);
  t.name_sim_track(3, "coflow 3");
  EXPECT_EQ(t.size(), 4u);

  const std::string json = dump(t);
  ASSERT_TRUE(JsonChecker(json).valid()) << json;
  // Wall complete event with duration and args.
  EXPECT_NE(json.find("\"name\":\"bvn.peel\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"bvn\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
  EXPECT_NE(json.find("\"nnz\":42"), std::string::npos);
  // Instants are thread-scoped so Perfetto draws them on their track.
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // Sim timeline: seconds -> microseconds on pid 2, caller-chosen track.
  EXPECT_NE(json.find("\"ts\":1000,\"dur\":4000,\"pid\":2,\"tid\":3"), std::string::npos);
  // Track label metadata.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(Tracer, EscapesHostileNames) {
  Tracer t;
  t.instant(std::string("quote \" backslash \\ newline \n tab \t ctrl \x01"), "esc");
  const std::string json = dump(t);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(Tracer, DropsBeyondCapacity) {
  Tracer t;
  t.set_capacity(4);
  for (int k = 0; k < 10; ++k) t.instant("e", "cap");
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // The truncated trace must still serialize cleanly.
  EXPECT_TRUE(JsonChecker(dump(t)).valid());
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.instant("e", "cap");
  EXPECT_EQ(t.size(), 1u);
}

TEST(Tracer, ConcurrentRecordingFromPool) {
  const int old_threads = runtime::thread_count();
  runtime::set_thread_count(4);
  Tracer t;
  constexpr int kN = 2000;
  runtime::parallel_for(kN, [&](int i) {
    const auto now = Tracer::Clock::now();
    t.complete("task " + std::to_string(i), "pool", now, now);
  });
  EXPECT_EQ(t.size(), static_cast<std::size_t>(kN));
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_TRUE(JsonChecker(dump(t)).valid());
  runtime::set_thread_count(old_threads);
}

}  // namespace
}  // namespace reco::obs
