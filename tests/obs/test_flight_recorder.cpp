// Fault flight recorder: ring bounds, JSONL dump format, arming
// semantics, and the end-to-end dump-on-abort path — a permanent port
// failure drives the RecoveringController through a replan, which must
// trigger an armed dump containing the events leading up to it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sched/reco_sin.hpp"
#include "sim/fabric.hpp"
#include "sim/faults.hpp"

namespace reco::obs {
namespace {

/// Saves and restores the obs enable flag, and leaves the global flight
/// recorder disarmed and empty on both sides of a test.
class FlightGuard {
 public:
  FlightGuard() : was_enabled_(obs::enabled()) {
    flight_recorder().arm({});
    flight_recorder().clear();
  }
  ~FlightGuard() {
    flight_recorder().arm({});
    flight_recorder().clear();
    obs::set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(FlightRecorder, RingIsBoundedAndKeepsTheNewestEvents) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record("tick", static_cast<double>(i), i);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_events(), 10u);
  std::ostringstream out;
  rec.write_jsonl(out);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 4u);
  // Oldest-to-newest: seqs 6..9 survive the wrap.
  for (std::size_t k = 0; k < lines.size(); ++k) {
    EXPECT_NE(lines[k].find("\"seq\": " + std::to_string(6 + k)), std::string::npos)
        << lines[k];
  }
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_events(), 10u);  // lifetime count survives clear
}

TEST(FlightRecorder, JsonlLinesAreStructurallySoundAndEscaped) {
  FlightRecorder rec(8);
  rec.record("admission", 1.5, 42, 3.25, "note with \"quotes\" and \\slashes\\");
  rec.record("plan", 2.0, 7, 12.0);
  std::ostringstream out;
  rec.write_jsonl(out);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
              std::count(line.begin(), line.end(), '}'));
  }
  EXPECT_NE(lines[0].find("\"kind\": \"admission\""), std::string::npos);
  EXPECT_NE(lines[0].find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(lines[0].find("\\\\slashes\\\\"), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\": 7"), std::string::npos);
  EXPECT_EQ(lines[1].find("\"note\""), std::string::npos);  // empty note omitted
}

TEST(FlightRecorder, UnarmedTriggerWritesNothing) {
  FlightRecorder rec(8);
  rec.record("plan", 0.0);
  EXPECT_FALSE(rec.armed());
  rec.trigger("nothing should happen");
  EXPECT_EQ(rec.dumps(), 0u);
}

TEST(FlightRecorder, ArmedTriggerDumpsRingPlusTriggerMarker) {
  FlightRecorder rec(8);
  const std::string path = "flight_test_out/incident.jsonl";
  rec.arm(path);
  EXPECT_TRUE(rec.armed());
  EXPECT_EQ(rec.armed_path(), path);
  rec.record("cut", 1.0, 3, 0.5);
  rec.record("replan", 2.0, 4);
  rec.trigger("first incident");
  EXPECT_EQ(rec.dumps(), 1u);
  {
    const std::vector<std::string> lines = lines_of(slurp(path));
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("\"kind\": \"cut\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"kind\": \"replan\""), std::string::npos);
    EXPECT_NE(lines[2].find("\"kind\": \"trigger\""), std::string::npos);
    EXPECT_NE(lines[2].find("first incident"), std::string::npos);
  }
  // A second trigger overwrites: the file holds the latest incident only.
  rec.record("port_fail", 3.0, 0);
  rec.trigger("second incident");
  EXPECT_EQ(rec.dumps(), 2u);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("second incident"), std::string::npos);
  EXPECT_EQ(text.find("first incident"), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"port_fail\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpsOnRecoveryReplanUnderInjectedPortFault) {
  // End-to-end: obs enabled, recorder armed, permanent ingress-0 failure
  // at t=0.  The RecoveringController replans mid-schedule, which must
  // trigger a dump whose ring shows the port failure before the replan.
  FlightGuard guard;
  obs::set_enabled(true);
  const std::string path = "flight_test_out/abort.jsonl";
  flight_recorder().arm(path);
  const std::uint64_t dumps_before = flight_recorder().dumps();
  metrics().counter("obs.flight.dumps").reset();

  Matrix d(4);
  d.at(0, 1) = 2.0;  // dies with ingress 0
  d.at(0, 3) = 1.0;  // dies with ingress 0
  d.at(1, 2) = 3.0;
  d.at(2, 3) = 1.5;
  d.at(3, 0) = 2.5;
  d.at(2, 0) = 0.75;
  const Time delta = 0.05;
  sim::FaultConfig config;
  config.port_faults.push_back({0.0, 0, sim::PortSide::kIngress, -1.0});
  sim::FaultInjector injector(config);
  sim::RecoveringController controller(reco_sin(d, delta), delta);
  const sim::SimulationReport r =
      sim::simulate_single_coflow(controller, d, delta, injector);
  EXPECT_GE(controller.replans(), 1);
  EXPECT_EQ(r.port_failures, 1);

  EXPECT_GE(flight_recorder().dumps(), dumps_before + 1);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"kind\": \"port_fail\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"recovery_replan\""), std::string::npos);
  EXPECT_NE(text.find("recovering-controller replan"), std::string::npos);
  EXPECT_DOUBLE_EQ(metrics().counter("obs.flight.dumps").value(),
                   static_cast<double>(flight_recorder().dumps() - dumps_before));
  std::remove(path.c_str());
}

TEST(FlightRecorder, DisabledObsRecordsNothingDuringFaultRun) {
  // The same faulty run with telemetry off must leave the recorder empty:
  // every record/trigger site is gated on obs::enabled().
  FlightGuard guard;
  obs::set_enabled(false);
  const std::uint64_t before = flight_recorder().total_events();
  const std::uint64_t dumps_before = flight_recorder().dumps();

  Matrix d(4);
  d.at(0, 1) = 2.0;
  d.at(1, 2) = 3.0;
  d.at(3, 0) = 2.5;
  const Time delta = 0.05;
  sim::FaultConfig config;
  config.port_faults.push_back({0.0, 0, sim::PortSide::kIngress, -1.0});
  sim::FaultInjector injector(config);
  sim::RecoveringController controller(reco_sin(d, delta), delta);
  (void)sim::simulate_single_coflow(controller, d, delta, injector);

  EXPECT_EQ(flight_recorder().total_events(), before);
  EXPECT_EQ(flight_recorder().dumps(), dumps_before);
}

}  // namespace
}  // namespace reco::obs
