// MetricsRegistry: handle stability, bucket-edge semantics, kind
// conflicts, exact totals under concurrent mutation from the runtime
// ThreadPool (the TSan CI job runs this suite at RECO_THREADS=8), and the
// CSV snapshot format.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace reco::obs {
namespace {

TEST(Counter, IncValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.reset();
  EXPECT_EQ(c.value(), 0.0);
}

TEST(Gauge, SetAndSetMax) {
  Gauge g;
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set_max(1.0);  // below current: no-op
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  // Bucket k counts x <= bound[k]: values exactly on an edge stay in that
  // bucket, the first value above the last bound overflows.
  for (const double x : {0.5, 1.0}) h.observe(x);    // bucket 0
  for (const double x : {1.5, 2.0}) h.observe(x);    // bucket 1
  for (const double x : {2.001, 4.0}) h.observe(x);  // bucket 2
  h.observe(4.001);                                  // overflow

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 4.001);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 2.001 + 4.0 + 4.001, 1e-9);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, Pow2Buckets) {
  const std::vector<double> b = pow2_buckets(8.0);
  EXPECT_EQ(b, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
}

TEST(MetricsRegistry, HandlesAreFindOrCreate) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
  // First registration of a histogram defines the buckets.
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {8.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistry, KindConflictThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::logic_error);
}

TEST(MetricsRegistry, ResetKeepsHandlesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.inc(7.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  EXPECT_DOUBLE_EQ(reg.counter("c").value(), 1.0);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  // Fan increments out across the runtime pool; fetch_add on small
  // integers is exact in double, so the totals must be exact too.
  const int old_threads = runtime::thread_count();
  runtime::set_thread_count(4);
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  Gauge& g = reg.gauge("high_water");
  Histogram& h = reg.histogram("sizes", {1.0, 2.0, 4.0});

  constexpr int kN = 20000;
  runtime::parallel_for(kN, [&](int i) {
    c.inc();
    g.set_max(static_cast<double>(i));
    h.observe(static_cast<double>(i % 8));
  });

  EXPECT_DOUBLE_EQ(c.value(), static_cast<double>(kN));
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kN - 1));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kN));
  // i%8 in 0..7: 0,1 -> bucket 0; 2 -> bucket 1; 3,4 -> bucket 2; 5,6,7 -> overflow.
  EXPECT_EQ(h.bucket_count(0), static_cast<std::uint64_t>(kN / 8 * 2));
  EXPECT_EQ(h.bucket_count(1), static_cast<std::uint64_t>(kN / 8));
  EXPECT_EQ(h.bucket_count(2), static_cast<std::uint64_t>(kN / 8 * 2));
  EXPECT_EQ(h.overflow(), static_cast<std::uint64_t>(kN / 8 * 3));
  runtime::set_thread_count(old_threads);
}

TEST(MetricsRegistry, SnapshotAndCsv) {
  MetricsRegistry reg;
  reg.counter("b.count").inc(3.0);
  reg.gauge("a.level").set(1.5);
  reg.histogram("c.hist", {2.0}).observe(1.0);

  const std::vector<MetricSample> snap = reg.snapshot();
  ASSERT_FALSE(snap.empty());
  // Sorted by name: a.level, b.count, then the c.hist statistics.
  EXPECT_EQ(snap[0].name, "a.level");
  EXPECT_EQ(snap[0].kind, "gauge");
  EXPECT_EQ(snap[1].name, "b.count");
  EXPECT_DOUBLE_EQ(snap[1].value, 3.0);

  std::ostringstream out;
  reg.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("metric,kind,field,value"), std::string::npos);
  EXPECT_NE(csv.find("b.count,counter,value,3"), std::string::npos);
  EXPECT_NE(csv.find("c.hist,histogram,count,1"), std::string::npos);
  EXPECT_NE(csv.find("c.hist,histogram,le_2,1"), std::string::npos);
}

}  // namespace
}  // namespace reco::obs
