// Prometheus/JSON exposition and the /metrics HTTP endpoint: name
// sanitization, cumulative bucket encoding, windowed gauges, file
// writers, and a live loopback round-trip.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"

namespace reco::obs {
namespace {

class FreshRegistry {
 public:
  FreshRegistry() { obs::reset(); }
  ~FreshRegistry() { obs::reset(); }
};

/// Minimal blocking HTTP/1.0 GET against 127.0.0.1:`port`; returns the
/// full response (status line + headers + body), empty on connect failure.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

TEST(PrometheusName, SanitizesAndPrefixes) {
  EXPECT_EQ(prometheus_name("online.decision_latency_us"), "reco_online_decision_latency_us");
  EXPECT_EQ(prometheus_name("bvn.peel.aborts"), "reco_bvn_peel_aborts");
  EXPECT_EQ(prometheus_name("weird-name 2"), "reco_weird_name_2");
  EXPECT_EQ(prometheus_name("ok_name:sub"), "reco_ok_name:sub");
}

TEST(PrometheusText, EncodesCountersGaugesAndCumulativeBuckets) {
  FreshRegistry fresh;
  metrics().counter("exp.test.events").inc(7.0);
  metrics().gauge("exp.test.level").set(2.5);
  Histogram& h = metrics().histogram("exp.test.lat", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(100.0);  // overflow

  std::ostringstream out;
  write_prometheus_text(out, metrics());
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE reco_exp_test_events counter\nreco_exp_test_events 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE reco_exp_test_level gauge\nreco_exp_test_level 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE reco_exp_test_lat histogram"), std::string::npos);
  // Cumulative buckets: 1 obs <= 1, 2 <= 2, 3 <= 4, 4 <= +Inf == count.
  EXPECT_NE(text.find("reco_exp_test_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("reco_exp_test_lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("reco_exp_test_lat_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(text.find("reco_exp_test_lat_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("reco_exp_test_lat_sum 105"), std::string::npos);
  EXPECT_NE(text.find("reco_exp_test_lat_count 4"), std::string::npos);
}

TEST(PrometheusWindow, ExposesLatestWindowAsLabelledGauges) {
  FreshRegistry fresh;
  Counter& c = metrics().counter("exp.test.replans");
  Histogram& h = metrics().histogram("exp.test.decide_us", {1.0, 2.0, 4.0, 8.0});
  TimeSeriesSampler sampler("testwin");
  sampler.sample(0.0);
  c.inc(10.0);
  for (int i = 0; i < 4; ++i) h.observe(3.0);
  sampler.sample(2.0);

  std::ostringstream out;
  write_prometheus_window(out, sampler);
  const std::string text = out.str();
  EXPECT_NE(text.find("reco_window_seconds{timeline=\"testwin\"} 2"), std::string::npos);
  EXPECT_NE(text.find("reco_window_exp_test_replans_per_s{timeline=\"testwin\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("reco_window_exp_test_decide_us_per_s{timeline=\"testwin\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("reco_window_exp_test_decide_us_p99{timeline=\"testwin\"}"),
            std::string::npos);
}

TEST(PrometheusWindow, EmptySamplerWritesNothing) {
  FreshRegistry fresh;
  TimeSeriesSampler sampler("testwin");
  std::ostringstream out;
  write_prometheus_window(out, sampler);
  EXPECT_TRUE(out.str().empty());
}

TEST(ExportFiles, SaversCreateParseableArtifacts) {
  FreshRegistry fresh;
  metrics().counter("exp.test.saved").inc(3.0);
  const std::string prom_path = "export_test_out/metrics.prom";
  const std::string snap_path = "export_test_out/snapshot.json";
  save_prometheus(prom_path);
  save_snapshot_json(snap_path);

  std::ifstream prom(prom_path);
  ASSERT_TRUE(prom.good());
  std::stringstream prom_text;
  prom_text << prom.rdbuf();
  EXPECT_NE(prom_text.str().find("reco_exp_test_saved 3"), std::string::npos);

  std::ifstream snap(snap_path);
  ASSERT_TRUE(snap.good());
  std::stringstream snap_text;
  snap_text << snap.rdbuf();
  const std::string json = snap_text.str();
  EXPECT_EQ(json.rfind("{\"snapshots\": [", 0), 0u);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  std::remove(prom_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(MetricsHttpServer, ServesMetricsSnapshotAnd404OnLoopback) {
  FreshRegistry fresh;
  metrics().counter("exp.test.http").inc(42.0);

  MetricsHttpServer server;
  server.start(0);  // ephemeral
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const std::string metrics_page = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics_page.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics_page.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics_page.find("# TYPE reco_exp_test_http counter"), std::string::npos);
  EXPECT_NE(metrics_page.find("reco_exp_test_http 42"), std::string::npos);

  const std::string snapshot_page = http_get(server.port(), "/snapshot");
  EXPECT_NE(snapshot_page.find("200 OK"), std::string::npos);
  EXPECT_NE(snapshot_page.find("application/json"), std::string::npos);
  EXPECT_NE(snapshot_page.find("{\"snapshots\": ["), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 3u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(MetricsHttpServer, StopJoinsAndPortIsReusable) {
  FreshRegistry fresh;
  int port = 0;
  {
    MetricsHttpServer server;
    server.start(0);
    port = server.port();
    server.stop();
  }
  // The listener is closed: a second server can bind a fresh ephemeral
  // port, and connecting to the old one no longer yields a response.
  MetricsHttpServer second;
  second.start(0);
  EXPECT_TRUE(second.running());
  EXPECT_GT(second.port(), 0);
  EXPECT_NE(second.port(), 0);
  (void)port;
  second.stop();
}

/// Raw loopback connection for the misbehaving-client tests.
int connect_to(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_all(int fd) {
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  return response;
}

TEST(MetricsHttpServer, ServesRequestsArrivingInPartialSegments) {
  FreshRegistry fresh;
  metrics().counter("exp.partial.segments").inc(5.0);
  MetricsHttpServer server;
  server.start(0);

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  // A legal-but-annoying client: the request line lands in three segments.
  for (const char* piece : {"GET /met", "rics HTT", "P/1.0\r\n\r\n"}) {
    ASSERT_GT(::send(fd, piece, std::strlen(piece), 0), 0);
    usleep(10 * 1000);
  }
  const std::string response = read_all(fd);
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("reco_exp_partial_segments 5"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(server.clients_dropped(), 0u);
  server.stop();
}

TEST(MetricsHttpServer, SilentClientIsDroppedAndServiceContinues) {
  FreshRegistry fresh;
  MetricsHttpServer server;
  server.set_client_timeout_ms(100);
  server.start(0);

  // Connect and send nothing: the server must cut us loose at the idle
  // timeout instead of wedging its accept loop forever.
  const int mute = connect_to(server.port());
  ASSERT_GE(mute, 0);
  char byte;
  const ssize_t got = ::recv(mute, &byte, 1, 0);  // blocks until the server closes
  EXPECT_LE(got, 0);
  ::close(mute);
  EXPECT_GE(server.clients_dropped(), 1u);

  // The next well-behaved scrape is unaffected.
  const std::string after = http_get(server.port(), "/metrics");
  EXPECT_NE(after.find("200 OK"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 1u);
  server.stop();
}

TEST(MetricsHttpServer, OversizedRequestGets413) {
  FreshRegistry fresh;
  MetricsHttpServer server;
  server.start(0);

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  // A "request line" that never ends: more than kMaxRequestBytes without a
  // newline must be answered 413, not buffered without bound.
  const std::string flood(MetricsHttpServer::kMaxRequestBytes + 1000, 'A');
  std::size_t sent = 0;
  while (sent < flood.size()) {
    const ssize_t n = ::send(fd, flood.data() + sent, flood.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;  // server may already have responded and closed
    sent += static_cast<std::size_t>(n);
  }
  const std::string response = read_all(fd);
  ::close(fd);
  EXPECT_NE(response.find("413"), std::string::npos);

  // Still serving.
  const std::string after = http_get(server.port(), "/metrics");
  EXPECT_NE(after.find("200 OK"), std::string::npos);
  server.stop();
}

TEST(MetricsHttpServer, ClientHangingUpMidResponseDoesNotKillTheProcess) {
  FreshRegistry fresh;
  // A big registry makes the response span multiple sends.
  for (int i = 0; i < 400; ++i) {
    metrics().counter("exp.hangup.metric_" + std::to_string(i)).inc(1.0);
  }
  MetricsHttpServer server;
  server.start(0);
  for (int round = 0; round < 3; ++round) {
    const int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    const char* request = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_GT(::send(fd, request, std::strlen(request), 0), 0);
    ::close(fd);  // hang up without reading the response
  }
  // If any of those closes raised SIGPIPE, the process is already gone; a
  // live scrape proves the server absorbed them.
  const std::string after = http_get(server.port(), "/metrics");
  EXPECT_NE(after.find("200 OK"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace reco::obs
