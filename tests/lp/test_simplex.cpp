#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "trace/rng.hpp"

namespace reco::lp {
namespace {

TEST(Simplex, TrivialMinimum) {
  // min x, x >= 3.
  Model m;
  const int x = m.add_var(1.0);
  m.add_constraint({{{x, 1.0}}, Sense::kGe, 3.0});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
}

TEST(Simplex, ClassicTwoVarMaximization) {
  // max 3a + 5b st a <= 4, 2b <= 12, 3a + 2b <= 18  (expected a=2, b=6, z=36)
  Model m;
  const int a = m.add_var(-3.0);
  const int b = m.add_var(-5.0);
  m.add_constraint({{{a, 1.0}}, Sense::kLe, 4.0});
  m.add_constraint({{{b, 2.0}}, Sense::kLe, 12.0});
  m.add_constraint({{{a, 3.0}, {b, 2.0}}, Sense::kLe, 18.0});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-9);
  EXPECT_NEAR(s.x[a], 2.0, 1e-9);
  EXPECT_NEAR(s.x[b], 6.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // min a + 2b st a + b = 5, b >= 1.
  Model m;
  const int a = m.add_var(1.0);
  const int b = m.add_var(2.0);
  m.add_constraint({{{a, 1.0}, {b, 1.0}}, Sense::kEq, 5.0});
  m.add_constraint({{{b, 1.0}}, Sense::kGe, 1.0});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0 + 2.0, 1e-9);  // a=4, b=1
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 2.
  Model m;
  const int x = m.add_var(1.0);
  m.add_constraint({{{x, 1.0}}, Sense::kLe, 1.0});
  m.add_constraint({{{x, 1.0}}, Sense::kGe, 2.0});
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x with x unbounded above.
  Model m;
  const int x = m.add_var(-1.0);
  m.add_constraint({{{x, 1.0}}, Sense::kGe, 0.0});
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // -x <= -2  (i.e. x >= 2), min x.
  Model m;
  const int x = m.add_var(1.0);
  m.add_constraint({{{x, -1.0}}, Sense::kLe, -2.0});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 twice; min x.
  Model m;
  const int x = m.add_var(1.0);
  const int y = m.add_var(0.0);
  m.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 2.0});
  m.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 2.0});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 0.0, 1e-9);
  EXPECT_NEAR(s.x[y], 2.0, 1e-9);
}

TEST(Simplex, TransportationProblem) {
  // 2x2 transportation: supplies {3, 5}, demands {4, 4},
  // costs [[1, 4], [2, 1]].  Optimal: x00=3, x10=1, x11=4 -> 3 + 2 + 4 = 9.
  Model m;
  std::vector<int> v;
  const double cost[2][2] = {{1, 4}, {2, 1}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) v.push_back(m.add_var(cost[i][j]));
  }
  m.add_constraint({{{v[0], 1.0}, {v[1], 1.0}}, Sense::kEq, 3.0});
  m.add_constraint({{{v[2], 1.0}, {v[3], 1.0}}, Sense::kEq, 5.0});
  m.add_constraint({{{v[0], 1.0}, {v[2], 1.0}}, Sense::kEq, 4.0});
  m.add_constraint({{{v[1], 1.0}, {v[3], 1.0}}, Sense::kEq, 4.0});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);
}

TEST(Simplex, RandomLpsSatisfyConstraints) {
  Rng rng(81);
  for (int trial = 0; trial < 30; ++trial) {
    Model m;
    const int n = rng.uniform_int(2, 6);
    for (int v = 0; v < n; ++v) m.add_var(rng.uniform(0.1, 2.0));  // positive costs
    const int rows = rng.uniform_int(1, 5);
    for (int r = 0; r < rows; ++r) {
      Constraint c;
      c.sense = Sense::kGe;  // covering constraints: always feasible
      c.rhs = rng.uniform(1.0, 5.0);
      for (int v = 0; v < n; ++v) {
        if (rng.uniform() < 0.7) c.terms.emplace_back(v, rng.uniform(0.2, 2.0));
      }
      if (c.terms.empty()) c.terms.emplace_back(0, 1.0);
      m.add_constraint(std::move(c));
    }
    const Solution s = solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "trial " << trial;
    for (const Constraint& c : m.constraints) {
      double lhs = 0.0;
      for (const auto& [v, coeff] : c.terms) lhs += coeff * s.x[v];
      EXPECT_GE(lhs, c.rhs - 1e-6) << "trial " << trial;
    }
    for (double x : s.x) EXPECT_GE(x, -1e-9);
  }
}

TEST(Simplex, ToStringCoverage) {
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(SolveStatus::kIterLimit), "iteration-limit");
}

TEST(Simplex, BadVarIndexThrows) {
  Model m;
  m.add_var(1.0);
  m.add_constraint({{{5, 1.0}}, Sense::kLe, 1.0});
  EXPECT_THROW(solve(m), std::invalid_argument);
}

}  // namespace
}  // namespace reco::lp
