#include "lp/model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/ordering.hpp"

#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

Coflow make_coflow(int id, double weight, const Matrix& demand) {
  Coflow c;
  c.id = id;
  c.weight = weight;
  c.demand = demand;
  return c;
}

TEST(IntervalLp, EmptyWorkload) {
  const auto r = lp::solve_interval_indexed_lp({});
  EXPECT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(r.est_completion.empty());
}

TEST(IntervalLp, SingleCoflowEstimateAtLeastBottleneck) {
  const auto coflows =
      std::vector<Coflow>{make_coflow(0, 1.0, Matrix::from_rows({{2, 0}, {0, 2}}))};
  const auto r = lp::solve_interval_indexed_lp(coflows);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(r.est_completion.size(), 1u);
  EXPECT_GE(r.est_completion[0], 2.0 - 1e-9);
}

TEST(IntervalLp, HeavierCoflowFinishesLater) {
  // Two coflows sharing port 0: the small one should get the earlier
  // fractional completion (classic SPT behaviour of the relaxation).
  Matrix small(2);
  small.at(0, 0) = 1.0;
  Matrix big(2);
  big.at(0, 0) = 8.0;
  const auto coflows =
      std::vector<Coflow>{make_coflow(0, 1.0, big), make_coflow(1, 1.0, small)};
  const auto r = lp::solve_interval_indexed_lp(coflows);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(r.est_completion[1], r.est_completion[0]);
}

TEST(IntervalLp, WeightsBreakTies) {
  // Identical demands; the heavy-weight coflow should not complete later.
  Matrix d(2);
  d.at(0, 0) = 4.0;
  const auto coflows =
      std::vector<Coflow>{make_coflow(0, 0.1, d), make_coflow(1, 10.0, d)};
  const auto r = lp::solve_interval_indexed_lp(coflows);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_LE(r.est_completion[1], r.est_completion[0] + 1e-9);
}

TEST(IntervalLp, DisjointCoflowsAllFinishInFirstIntervals) {
  // No port contention: every estimate ~ its own bottleneck scale.
  Matrix a(3);
  a.at(0, 0) = 2.0;
  Matrix b(3);
  b.at(1, 1) = 2.0;
  const auto coflows = std::vector<Coflow>{make_coflow(0, 1.0, a), make_coflow(1, 1.0, b)};
  const auto r = lp::solve_interval_indexed_lp(coflows);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(r.est_completion[0], 2.0, 1e-6);
  EXPECT_NEAR(r.est_completion[1], 2.0, 1e-6);
}

TEST(IntervalLp, IntervalGridCoversLoads) {
  Rng rng(91);
  const auto coflows = testing::random_workload(rng, 6, 4, 0.01, 4.0);
  const auto r = lp::solve_interval_indexed_lp(coflows);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  ASSERT_FALSE(r.interval_ends.empty());
  // Grid must reach the max port load so every coflow can complete.
  double max_load = 0.0;
  const int n = coflows.front().demand.n();
  for (int p = 0; p < n; ++p) {
    double in_load = 0.0;
    double out_load = 0.0;
    for (const Coflow& c : coflows) {
      in_load += c.demand.row_sum(p);
      out_load += c.demand.col_sum(p);
    }
    max_load = std::max({max_load, in_load, out_load});
  }
  EXPECT_GE(r.interval_ends.back(), max_load - 1e-9);
}

TEST(IntervalLp, SizeGuardRejectsOversizedInstances) {
  Rng rng(95);
  const auto coflows = testing::random_workload(rng, 10, 5, 0.01, 4.0);
  lp::IntervalLpOptions o;
  o.max_variables = 3;  // absurdly small: must refuse, not grind
  const auto r = lp::solve_interval_indexed_lp(coflows, o);
  EXPECT_EQ(r.status, lp::SolveStatus::kIterLimit);
  // And the ordering layer must fall back gracefully (BSSI), still
  // returning a valid permutation.
  const auto order = lp_order(coflows, o);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int k = 0; k < 10; ++k) EXPECT_EQ(sorted[k], k);
}

TEST(IntervalLp, RandomWorkloadsSolveAndRankSensibly) {
  Rng rng(93);
  for (int trial = 0; trial < 5; ++trial) {
    const auto coflows = testing::random_workload(rng, 8, 5, 0.01, 2.0);
    const auto r = lp::solve_interval_indexed_lp(coflows);
    ASSERT_EQ(r.status, lp::SolveStatus::kOptimal) << "trial " << trial;
    for (std::size_t k = 0; k < coflows.size(); ++k) {
      EXPECT_GE(r.est_completion[k], coflows[k].demand.rho() - 1e-6)
          << "trial " << trial << " coflow " << k;
    }
  }
}

}  // namespace
}  // namespace reco
