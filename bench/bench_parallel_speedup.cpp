// Parallel runtime speedup: the same multi-coflow planning workload run
// with RECO_THREADS=1 and RECO_THREADS=T, verifying (a) the wall-clock
// speedup of the per-coflow fan-out and (b) that every byte of output is
// identical — the determinism contract of runtime/parallel.hpp.
//
// Exit status is 0 only if the thread counts agree byte-for-byte, so this
// binary doubles as a determinism regression check in CI.  The measured
// speedup depends on the machine; on a single-core container both runs
// take the sequential path and the ratio is ~1.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "runtime/parallel.hpp"
#include "sched/multi_baselines.hpp"
#include "stats/csv.hpp"
#include "stats/report.hpp"
#include "trace/rng.hpp"

namespace {

using namespace reco;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Dense random coflows: the heavy per-coflow decomposition workload where
/// the parallel fan-out pays off (N >= 64 ports).
std::vector<Coflow> dense_workload(int num_coflows, int ports, Time delta, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Coflow> coflows;
  coflows.reserve(num_coflows);
  for (int k = 0; k < num_coflows; ++k) {
    Coflow c;
    c.id = k;
    c.weight = rng.uniform();
    c.demand = Matrix(ports);
    for (int i = 0; i < ports; ++i) {
      for (int j = 0; j < ports; ++j) {
        if (rng.uniform() < 0.6) c.demand.at(i, j) = rng.uniform(4 * delta, 100 * delta);
      }
    }
    coflows.push_back(std::move(c));
  }
  return coflows;
}

struct RunResult {
  double plan_ms = 0.0;
  double trace_ms = 0.0;
  std::string csv;
};

RunResult run_at(int threads, const std::vector<Coflow>& coflows, Time delta,
                 const GeneratorOptions& trace_opts) {
  runtime::set_thread_count(threads);

  const auto t0 = Clock::now();
  std::vector<int> order(coflows.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = static_cast<int>(k);
  const MultiScheduleResult r =
      sequential_multi_schedule(coflows, order, delta, SingleCoflowAlgo::kRecoSin);
  RunResult out;
  out.plan_ms = ms_since(t0);

  const auto t1 = Clock::now();
  const auto trace = generate_workload(trace_opts);
  out.trace_ms = ms_since(t1);

  std::ostringstream csv;
  write_slices_csv(csv, r.schedule);
  for (const Coflow& c : trace) csv << c.id << ',' << c.weight << ',' << c.demand.total() << '\n';
  out.csv = csv.str();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const int ports = opts.ports > 0 ? opts.ports : 64;
  const int num_coflows = opts.coflows > 0 ? opts.coflows : (opts.full ? 32 : 12);
  const int parallel_threads = std::max(2, runtime::thread_count() > 1 ? runtime::thread_count() : 4);

  const std::vector<Coflow> coflows = dense_workload(num_coflows, ports, opts.delta, opts.seed);
  GeneratorOptions trace_opts;
  trace_opts.num_ports = ports;
  trace_opts.num_coflows = 8 * num_coflows;
  trace_opts.seed = opts.seed;

  const RunResult seq = run_at(1, coflows, opts.delta, trace_opts);
  const RunResult par = run_at(parallel_threads, coflows, opts.delta, trace_opts);
  runtime::set_thread_count(0);  // restore env/hardware default

  ReportTable t("Parallel runtime speedup: per-coflow planning fan-out");
  t.set_header({"threads", "plan ms", "trace ms", "plan speedup", "trace speedup"});
  t.add_row({"1", fmt_double(seq.plan_ms, 1), fmt_double(seq.trace_ms, 1), "1.00x", "1.00x"});
  t.add_row({std::to_string(parallel_threads), fmt_double(par.plan_ms, 1),
             fmt_double(par.trace_ms, 1), fmt_ratio(seq.plan_ms / par.plan_ms),
             fmt_ratio(seq.trace_ms / par.trace_ms)});

  std::printf("%d dense coflows on %d ports (Reco-Sin per-coflow planning) plus %d\n"
              "generated trace coflows; identical inputs at both thread counts.\n\n",
              num_coflows, ports, trace_opts.num_coflows);
  t.print();

  const bool identical = seq.csv == par.csv;
  std::printf("result CSVs byte-identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM VIOLATION");
  std::printf("Expected: plan speedup approaches min(threads, coflows) on multi-core\n"
              "hardware; ~1.0x on a single hardware thread.\n");
  return identical ? 0 : 1;
}
