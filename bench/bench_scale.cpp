// N-sweep benchmarks for the decomposition stack at N >= 1024 ports
// (ISSUE 7): the scale twin of bench_micro_kernels.  Where the micro
// suite sweeps density at N <= 128, this one holds nnz roughly constant
// (~8k edges) while N grows 256 -> 4096, which is the regime ROADMAP
// item 4 flags: per-round costs that scale with N rather than with the
// support dominate, and the bitset Hopcroft-Karp + lazy-key parallel peel
// paths engage.
//
// Row groups:
//   * BM_ThresholdMatchingSparse / BM_BottleneckMatchingSparse — the
//     matching kernels at scale (the /1024/125 row is dense enough that
//     kAuto selects the bitset BFS; the constant-nnz rows stay on CSR).
//   * BM_PeelParallel/{N}/{permille}/{threads} vs BM_PeelSequential —
//     full-schedule BvN decomposition, lazy-key parallel peel against the
//     retained kFirstMatching peel on identical stuffed inputs.  The
//     ns ratio at equal shape is the headline `peel_speedup_1024`.
//   * BM_RecoSinPlan / BM_SolsticePlan — whole-planner cost vs fabric
//     width (folded in from the retired bench_scalability binary).
//   * BM_OnlineDaemonStream — streamed arrivals through the event-driven
//     daemon; the million-coflow soak variant compiles in only with
//     -DRECO_BENCH_SOAK=ON (see bench/CMakeLists.txt).
//
// `--baseline_json=FILE` writes BENCH_scale.json; CI's perf-guard-scale
// step gates BM_PeelParallel/1024/* and BM_BottleneckMatchingSparse/1024/*
// against the committed copy.  Timing comes from the shared harness in
// bench_util.hpp (0.05 s min time x 3 repetitions, median recorded).
#define RECO_BENCH_WITH_GBENCH
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "bvn/bvn.hpp"
#include "bvn/parallel_peel.hpp"
#include "bvn/stuffing.hpp"
#include "core/simd.hpp"
#include "core/support_index.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/matching_engine.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "sim/online_daemon.hpp"
#include "trace/generator.hpp"
#include "trace/rng.hpp"

namespace {

using namespace reco;

Matrix sparse_random(int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < density) m.at(i, j) = rng.uniform(0.5, 10.0);
    }
  }
  return m;
}

Matrix swept_input(const benchmark::State& state, std::uint64_t seed) {
  const int n = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  return sparse_random(n, density, seed + static_cast<std::uint64_t>(n) * 1000 +
                                       static_cast<std::uint64_t>(state.range(1)));
}

void report_shape(benchmark::State& state, const Matrix& m) {
  state.counters["N"] = static_cast<double>(m.n());
  state.counters["nnz"] = static_cast<double>(m.nnz());
}

/// Constant-nnz N-sweep: permille halves as N doubles, so every point
/// carries ~2k demand edges and the measured growth is the per-port (not
/// per-edge) cost.  The {1024, 125} point is the dense outlier that
/// crosses the kAuto bitset-BFS gate.
void ScaleSweep(benchmark::internal::Benchmark* b) {
  b->Args({256, 31})->Args({512, 16})->Args({1024, 8})->Args({2048, 4})->Args({4096, 2});
  b->Args({1024, 125});
}

// ---- matching kernels at scale -------------------------------------------

void BM_ThresholdMatchingSparse(benchmark::State& state) {
  const SupportIndex idx(swept_input(state, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold_matching(idx, 0.5).size);
  }
  report_shape(state, idx.matrix());
}
BENCHMARK(BM_ThresholdMatchingSparse)->Apply(ScaleSweep);

void BM_BottleneckMatchingSparse(benchmark::State& state) {
  const SupportIndex idx(stuff(swept_input(state, 2)));
  MatchingScratch scratch;
  for (auto _ : state) {
    bottleneck_solve(idx, scratch);
    benchmark::DoNotOptimize(scratch.bottleneck);
  }
  state.counters["bitset_phases"] = static_cast<double>(scratch.stats.bitset_phases);
  report_shape(state, idx.matrix());
}
BENCHMARK(BM_BottleneckMatchingSparse)->Apply(ScaleSweep);

// ---- full BvN peel: parallel vs retained sequential ----------------------
//
// Args are {N, permille, threads} / {N, permille}.  Both peels decompose
// the same stuffed input into a complete CircuitSchedule; at these shapes
// the schedule has thousands of rounds, so the sequential peel's O(N) scan
// + O(N) index subtractions per round dominate while the lazy-key peel
// pays O(freed * log N) per round plus the (parallelizable) output writes.

void BM_PeelParallel(benchmark::State& state) {
  const Matrix stuffed = stuff(swept_input(state, 4));
  runtime::set_thread_count(static_cast<int>(state.range(2)));
  int rounds = 0;
  for (auto _ : state) {
    rounds = bvn_decompose(SupportIndex(stuffed), BvnPolicy::kParallelPeel).num_assignments();
    benchmark::DoNotOptimize(rounds);
  }
  runtime::set_thread_count(0);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["threads"] = static_cast<double>(state.range(2));
  report_shape(state, stuffed);
}
BENCHMARK(BM_PeelParallel)
    ->Args({512, 16, 1})
    ->Args({512, 16, 8})
    ->Args({1024, 8, 1})
    ->Args({1024, 8, 8});

// Speculative lookahead, depth pinned explicitly (BM_PeelParallel runs the
// auto-resolved production depth).  Args are {N, permille, threads, depth}.
// Comparing the /8/{threads}/0 and /8/{threads}/{k} rows attributes the
// lookahead win separately from the SIMD kernel win, which both peels share.
void BM_PeelSpeculative(benchmark::State& state) {
  const Matrix stuffed = stuff(swept_input(state, 4));
  runtime::set_thread_count(static_cast<int>(state.range(2)));
  const int depth = static_cast<int>(state.range(3));
  int rounds = 0;
  for (auto _ : state) {
    rounds = peel_parallel(SupportIndex(stuffed), depth).num_assignments();
    benchmark::DoNotOptimize(rounds);
  }
  runtime::set_thread_count(0);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["threads"] = static_cast<double>(state.range(2));
  state.counters["depth"] = static_cast<double>(depth);
  report_shape(state, stuffed);
}
BENCHMARK(BM_PeelSpeculative)
    ->Args({1024, 8, 8, 0})
    ->Args({1024, 8, 8, 2})
    ->Args({1024, 8, 8, 4})
    ->Args({1024, 8, 1, 4});

void BM_PeelSequential(benchmark::State& state) {
  const Matrix stuffed = stuff(swept_input(state, 4));
  int rounds = 0;
  for (auto _ : state) {
    rounds = bvn_decompose(SupportIndex(stuffed), BvnPolicy::kFirstMatching).num_assignments();
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  report_shape(state, stuffed);
}
BENCHMARK(BM_PeelSequential)->Args({512, 16})->Args({1024, 8});

// ---- SIMD kernel layer: dispatched tier vs scalar reference --------------
//
// Args are {N, tier} with tier 0 = forced scalar, 1 = active dispatch
// (CPUID x RECO_SIMD).  The loop body is the peel/matching hot pattern the
// kernels replace: per-row mirror re-gather + max scan over a stuffed
// index, and the quickselect pool partition.  The /1024/1-vs-/1024/0 ratio
// is the isolated kernel-layer win (simd_row_speedup_1024); CI guards the
// dispatched rows against the committed baseline.

void BM_SimdRowKernels(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const simd::Kernels& kn = state.range(1) != 0
                                ? simd::kernels()
                                : simd::kernels_for(simd::Level::kScalar);
  const SupportIndex idx(stuff(sparse_random(n, 0.05, 6)));
  std::vector<double> buf(static_cast<std::size_t>(n));
  for (auto _ : state) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      const auto cols = idx.row_support(i);
      kn.gather(idx.matrix().row_data(i), cols.begin(), cols.size(), buf.data());
      acc = kn.max_value(buf.data(), cols.size(), acc);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["simd_level"] = static_cast<double>(simd::active_level());
  report_shape(state, idx.matrix());
}
BENCHMARK(BM_SimdRowKernels)->Args({1024, 0})->Args({1024, 1});

void BM_SimdPartition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const simd::Kernels& kn = state.range(1) != 0
                                ? simd::kernels()
                                : simd::kernels_for(simd::Level::kScalar);
  // The bottleneck-descent value pool: ~8 distinct values per port, halved
  // around the running pivot until one remains — the quickselect ladder.
  Rng rng(17);
  std::vector<double> pool(static_cast<std::size_t>(n) * 8);
  for (double& v : pool) v = rng.uniform(0.5, 10.0);
  std::vector<double> work(pool.size());
  for (auto _ : state) {
    work = pool;
    int m = static_cast<int>(work.size());
    while (m > 1) {
      const double pivot = work[static_cast<std::size_t>(m) / 2];
      const int kept = kn.partition_greater(work.data(), m, pivot);
      m = kept > 0 ? kept : m / 2;  // degenerate pivot: shrink anyway
    }
    benchmark::DoNotOptimize(work[0]);
  }
  state.counters["simd_level"] = static_cast<double>(simd::active_level());
  state.counters["N"] = static_cast<double>(n);
}
BENCHMARK(BM_SimdPartition)->Args({1024, 0})->Args({1024, 1});

// ---- whole-planner cost vs fabric width (ex-bench_scalability) -----------

void BM_RecoSinPlan(benchmark::State& state) {
  const Matrix demand = swept_input(state, 5);
  const Time delta = 0.25;
  int assigns = 0;
  for (auto _ : state) {
    assigns = reco_sin(demand, delta).num_assignments();
    benchmark::DoNotOptimize(assigns);
  }
  state.counters["assigns"] = static_cast<double>(assigns);
  report_shape(state, demand);
}
BENCHMARK(BM_RecoSinPlan)->Args({128, 600})->Args({256, 600})->Args({512, 100});

void BM_SolsticePlan(benchmark::State& state) {
  const Matrix demand = swept_input(state, 5);
  int assigns = 0;
  for (auto _ : state) {
    assigns = solstice(demand).num_assignments();
    benchmark::DoNotOptimize(assigns);
  }
  state.counters["assigns"] = static_cast<double>(assigns);
  report_shape(state, demand);
}
BENCHMARK(BM_SolsticePlan)->Args({128, 600})->Args({256, 600})->Args({512, 100});

// ---- streamed arrivals through the online daemon -------------------------

void daemon_stream(benchmark::State& state, int coflows) {
  GeneratorOptions gen;
  gen.num_ports = 16;
  gen.num_coflows = coflows;
  gen.seed = 995;
  gen.mean_interarrival = 0.01;
  sim::OnlineDaemonOptions opt;
  opt.core.record_schedule = false;
  opt.core.record_cct = false;
  std::uint64_t finished = 0;
  for (auto _ : state) {
    ArrivalStream stream(gen);
    sim::PullSource<ArrivalStream> source(stream);
    sim::OnlineDaemon daemon(OnlinePolicyKind::kDrainReplanRecoMul, opt);
    daemon.reserve(1024);  // slots recycle; no need to reserve the full trace
    finished = daemon.run(source).stats.finished;
    benchmark::DoNotOptimize(finished);
  }
  state.SetItemsProcessed(state.iterations() * coflows);
  state.counters["N"] = 16.0;
  state.counters["finished"] = static_cast<double>(finished);
}

void BM_OnlineDaemonStream(benchmark::State& state) {
  daemon_stream(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_OnlineDaemonStream)->Arg(2000);

#ifdef RECO_BENCH_SOAK
// Million-coflow soak: a synthetic trace streamed one arrival at a time
// through the drain-replan Reco-Mul daemon (arrivals are generated, never
// materialized, so memory stays flat while every admit / plan / recycle
// path runs a million times).  Compiled in only with -DRECO_BENCH_SOAK=ON;
// runs for minutes, so it is pinned to a single iteration.
void BM_MillionCoflowSoak(benchmark::State& state) {
  daemon_stream(state, 1000000);
}
BENCHMARK(BM_MillionCoflowSoak)->Iterations(1)->Repetitions(1);
#endif  // RECO_BENCH_SOAK

// ---- baseline derived metrics --------------------------------------------

/// Headline: sequential-vs-lazy-key peel ratio at equal shape and one
/// thread (pure algorithmic win, no parallelism credit).  Zero-valued
/// inputs yield non-finite ratios, which the harness drops.
std::vector<std::pair<std::string, double>> derived_metrics(
    const std::vector<bench::gbench::Row>& rows) {
  using bench::gbench::row_ns;
  return {
      {"peel_speedup_512",
       row_ns(rows, "BM_PeelSequential/512/16") / row_ns(rows, "BM_PeelParallel/512/16/1")},
      {"peel_speedup_1024",
       row_ns(rows, "BM_PeelSequential/1024/8") / row_ns(rows, "BM_PeelParallel/1024/8/1")},
      // Lookahead win in isolation: same threads, depth 4 vs depth 0.
      {"spec_speedup_1024", row_ns(rows, "BM_PeelSpeculative/1024/8/8/0") /
                                row_ns(rows, "BM_PeelSpeculative/1024/8/8/4")},
      // Kernel-layer win in isolation: dispatched tier vs forced scalar.
      {"simd_row_speedup_1024",
       row_ns(rows, "BM_SimdRowKernels/1024/0") / row_ns(rows, "BM_SimdRowKernels/1024/1")},
      {"simd_partition_speedup_1024",
       row_ns(rows, "BM_SimdPartition/1024/0") / row_ns(rows, "BM_SimdPartition/1024/1")},
  };
}

}  // namespace

int main(int argc, char** argv) {
  // "threads" and "depth" feed the perf guard's oversubscription skip;
  // "cores" is appended by the harness itself.
  return reco::bench::gbench::run_main(argc, argv, {"nnz", "N", "threads", "depth"},
                                       derived_metrics);
}
