// Ablation: where does Reco-Mul's advantage come from?
//   * ALG_p choice: BSSI (default) vs SEBF vs LP ordering, all through the
//     same Algorithm-2 transform;
//   * start-time regularization on/off (off = raw S_p in the OCS, one
//     reconfiguration per distinct start);
//   * sequential strawman: the same BSSI order but one coflow at a time.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/slice.hpp"
#include "ocs/slice_executor.hpp"
#include "sched/fluid.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/packet_scheduler.hpp"
#include "sched/reco_mul.hpp"
#include "stats/report.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const GeneratorOptions g = bench::multi_coflow_workload(opts);
  const auto coflows = bench::reindex(generate_workload(g));

  struct Row {
    const char* name;
    MultiScheduleResult result;
  };
  const std::vector<Row> rows = {
      {"Reco-Mul + BSSI", reco_mul_pipeline(coflows, g.delta, g.c_threshold,
                                            OrderingPolicy::kBssi)},
      {"Reco-Mul + SEBF", reco_mul_pipeline(coflows, g.delta, g.c_threshold,
                                            OrderingPolicy::kSebf)},
      {"Reco-Mul + LP order", reco_mul_pipeline(coflows, g.delta, g.c_threshold,
                                                OrderingPolicy::kLp)},
      {"no start regularization", unregularized_pipeline(coflows, g.delta)},
      {"sequential (BSSI+RecoSin)",
       sequential_multi_schedule(coflows, bssi_order(coflows), g.delta,
                                 SingleCoflowAlgo::kRecoSin)},
  };

  const double reference = rows.front().result.total_weighted_cct;
  ReportTable t("Ablation: Reco-Mul design choices");
  t.set_header({"variant", "sum w*CCT", "reconfigs", "vs default"});
  for (const Row& row : rows) {
    t.add_row({row.name, fmt_double(row.result.total_weighted_cct, 4),
               std::to_string(row.result.reconfigurations),
               fmt_ratio(row.result.total_weighted_cct / reference)});
  }

  // Reference points outside the all-stop design space: the same pseudo
  // schedule on a not-all-stop fabric, and the idealized fluid packet
  // switch (an unreachable lower reference for ALG_p itself).
  {
    const std::vector<int> order = bssi_order(coflows);
    const SliceSchedule packet = packet_schedule(coflows, order);
    const RecoMulSchedule rm = reco_mul_transform(packet, g.delta, g.c_threshold);
    const SliceSchedule nas = realize_not_all_stop(rm.pseudo, g.delta);
    const auto nas_cct = completion_times(nas, static_cast<int>(coflows.size()));
    t.add_row({"not-all-stop fabric (Sec. VI)", fmt_double(total_weighted_cct(nas_cct, coflows), 4),
               std::to_string(static_cast<int>(packet.size())),
               fmt_ratio(total_weighted_cct(nas_cct, coflows) / reference)});
    const FluidScheduleResult fluid = fluid_packet_schedule(coflows, order);
    t.add_row({"fluid packet switch (Varys)", fmt_double(fluid.total_weighted_cct, 4), "0",
               fmt_ratio(fluid.total_weighted_cct / reference)});
  }

  std::printf("Workload: %d coflows on %d ports; delta = %s; c = %.0f.\n\n", g.num_coflows,
              g.num_ports, fmt_time(g.delta).c_str(), g.c_threshold);
  t.print();
  std::printf("Rows 1-3 vary ALG_p under the same transform; row 4 removes Algorithm 2's\n"
              "start alignment; row 5 shows why concurrent (packet-style) schedules beat\n"
              "one-coflow-at-a-time execution even with a good order.  The last two rows\n"
              "step outside the all-stop design space: a not-all-stop fabric (per-port\n"
              "setups, no global halts) and the idealized divisible-rate packet switch —\n"
              "note how close Reco-Mul gets to the latter despite circuit constraints.\n");
  return 0;
}
