// Fig. 8: reconfiguration frequency for multiple coflows — Reco-Mul vs
// LP-II-GB, per density class and mixed.
//
// Paper reference: LP-II-GB needs 4.37x / 2.56x / 1.48x more
// reconfigurations on sparse / normal / dense, and 2.59x on the mix; the
// gap shrinks as density grows.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sched/multi_baselines.hpp"
#include "stats/report.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const GeneratorOptions g = bench::multi_coflow_workload(opts);
  const auto all = generate_workload(g);

  ReportTable t("Fig. 8: reconfiguration frequency, multiple coflows");
  t.set_header({"workload", "n", "Reco-Mul", "LP-II-GB", "ratio", "paper"});
  const char* paper[] = {"4.37x", "2.56x", "1.48x", "2.59x"};

  struct Case {
    const char* name;
    std::vector<Coflow> coflows;
  };
  std::vector<Case> cases;
  for (DensityClass cls : bench::kAllClasses) {
    cases.push_back({bench::class_name(cls), bench::subset_by_class(all, cls)});
  }
  cases.push_back({"all", bench::reindex(all)});

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& coflows = cases[i].coflows;
    if (coflows.empty()) {
      t.add_row({cases[i].name, "0", "-", "-", "-", paper[i]});
      continue;
    }
    const int reco = reco_mul_pipeline(coflows, g.delta, g.c_threshold).reconfigurations;
    const int lp = lp_ii_gb(coflows, g.delta).reconfigurations;
    t.add_row({cases[i].name, std::to_string(coflows.size()), std::to_string(reco),
               std::to_string(lp), fmt_ratio(static_cast<double>(lp) / reco), paper[i]});
  }

  std::printf("Workload: %d coflows on %d ports (use --full for 526/150); delta = %s.\n\n",
              g.num_coflows, g.num_ports, fmt_time(g.delta).c_str());
  t.print();
  std::printf("Expected shape: the ratio falls as density rises (denser coflows leave\n"
              "less fragmentary demand for start-time alignment to save).\n");
  return 0;
}
