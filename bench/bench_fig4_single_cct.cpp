// Fig. 4(a) + 4(b): single-coflow scheduling, Reco-Sin vs Solstice, at the
// default reconfiguration delay (100 us), split by demand-matrix density.
//
// 4(a): reconfiguration counts (paper: Solstice needs 2.58x / 7.07x /
//       7.36x more for sparse / normal / dense).
// 4(b): CCT (paper: Solstice needs 1.19x / 1.15x / 1.14x more time).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "stats/csv.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const GeneratorOptions g = bench::single_coflow_workload(opts);
  const int samples = opts.samples > 0 ? opts.samples : (opts.full ? 1 << 30 : 12);
  const auto coflows = generate_workload(g);

  const double paper_reconf[] = {2.58, 7.07, 7.36};
  const double paper_cct[] = {1.19, 1.15, 1.14};

  ReportTable ta("Fig. 4(a): reconfiguration frequency per density class");
  ta.set_header({"density", "n", "Reco-Sin", "Solstice", "ratio", "paper"});
  // Raw per-coflow rows for the paper's CDF plots (exported with --csv).
  std::vector<std::vector<std::string>> raw_rows;
  ReportTable tb("Fig. 4(b): single-coflow CCT per density class");
  tb.set_header({"density", "n", "Reco-Sin", "Solstice", "ratio", "paper"});

  int cls_idx = 0;
  for (DensityClass cls : bench::kAllClasses) {
    const std::vector<int> picked = bench::sample_class(coflows, cls, samples);
    std::vector<double> reco_reconf, sol_reconf, reco_cct, sol_cct;
    for (int k : picked) {
      const Matrix& d = coflows[k].demand;
      const ExecutionResult reco = execute_all_stop(reco_sin(d, g.delta), d, g.delta);
      const ExecutionResult sol = execute_all_stop(solstice(d), d, g.delta);
      reco_reconf.push_back(reco.reconfigurations);
      sol_reconf.push_back(sol.reconfigurations);
      reco_cct.push_back(reco.cct);
      sol_cct.push_back(sol.cct);
      raw_rows.push_back({std::string(bench::class_name(cls)), std::to_string(k),
                          std::to_string(reco.reconfigurations),
                          std::to_string(sol.reconfigurations), fmt_double(reco.cct, 9),
                          fmt_double(sol.cct, 9)});
    }
    ta.add_row({bench::class_name(cls), std::to_string(picked.size()),
                fmt_double(mean(reco_reconf), 1), fmt_double(mean(sol_reconf), 1),
                fmt_ratio(normalized_ratio(sol_reconf, reco_reconf)),
                fmt_ratio(paper_reconf[cls_idx])});
    tb.add_row({bench::class_name(cls), std::to_string(picked.size()),
                fmt_time(mean(reco_cct)), fmt_time(mean(sol_cct)),
                fmt_ratio(normalized_ratio(sol_cct, reco_cct)), fmt_ratio(paper_cct[cls_idx])});
    ++cls_idx;
  }

  std::printf("Workload: %d coflows on %d ports; delta = %s; up to %d coflows per class.\n\n",
              g.num_coflows, g.num_ports, fmt_time(g.delta).c_str(), samples);
  ta.print();
  tb.print();
  if (!opts.csv_dir.empty()) {
    const std::string path = opts.csv_dir + "/fig4_per_coflow.csv";
    save_csv(path,
             {"density", "coflow", "reco_reconfigs", "solstice_reconfigs", "reco_cct_s",
              "solstice_cct_s"},
             raw_rows);
    std::printf("raw per-coflow CDF data written to %s\n", path.c_str());
  }
  std::printf("'ratio' = Solstice / Reco-Sin (higher favours Reco-Sin); 'paper' is the\n"
              "corresponding factor reported in Sec. V-C.\n");
  return 0;
}
