// Micro-benchmarks (google-benchmark) for the online scheduler path: the
// per-decision replan cycle (the daemon's admit->order->plan->commit hot
// loop), the serialized FIFO step, and end-to-end daemon throughput over a
// streamed Poisson arrival source.  These back the online subsystem's two
// first-class numbers: p99 decision latency and steady-state allocation
// events (see docs/ONLINE.md).
//
// `--baseline_json=FILE` writes a machine-readable baseline
// (name -> {ns_per_op, p99_us, N}) plus derived headline metrics; CI's
// perf-guard gates BM_OnlineDecisionLatency against the committed
// BENCH_online.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/coflow.hpp"
#include "sched/online_core.hpp"
#include "sim/online_daemon.hpp"
#include "trace/generator.hpp"

namespace {

using namespace reco;

constexpr Time kInf = std::numeric_limits<Time>::infinity();

std::vector<Coflow> batch_workload(int ports, int coflows, std::uint64_t seed) {
  GeneratorOptions o;
  o.num_ports = ports;
  o.num_coflows = coflows;
  o.seed = seed;
  return generate_workload(o);
}

OnlineCoreOptions soak_options() {
  OnlineCoreOptions o;
  // Benchmark the engine, not the unbounded result buffers.
  o.record_schedule = false;
  o.record_cct = false;
  return o;
}

// ---- per-decision replan cycle -------------------------------------------
//
// One iteration = one full daemon decision on a warm core: admit a batch of
// Args{ports, batch} coflows into recycled slots, order + packet-schedule +
// Reco-Mul transform them (the plan() call the latency histogram times),
// and commit the epoch.  After warm-up the cycle allocates nothing.

void BM_OnlineDecisionLatency(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  const auto block = batch_workload(ports, batch, 991);
  OnlineCore core(OnlinePolicyKind::kEpochRecoMul, soak_options());
  core.reserve(static_cast<std::size_t>(batch));
  for (auto _ : state) {
    for (const Coflow& c : block) core.submit(c);
    core.plan(0.0);
    benchmark::DoNotOptimize(core.commit(kInf));
  }
  state.counters["N"] = static_cast<double>(ports);
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["p99_us"] = core.latency().quantile_us(0.99);
  state.counters["alloc_events"] = static_cast<double>(core.stats().alloc_events);
}
BENCHMARK(BM_OnlineDecisionLatency)
    ->Args({16, 4})
    ->Args({16, 8})
    ->Args({32, 8})
    ->Args({32, 16});

// ---- serialized FIFO step ------------------------------------------------

void BM_OnlineFifoDecision(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const auto block = batch_workload(ports, 4, 992);
  OnlineCore core(OnlinePolicyKind::kFifoRecoSin, soak_options());
  core.reserve(block.size());
  for (auto _ : state) {
    for (const Coflow& c : block) core.submit(c);
    while (!core.idle()) benchmark::DoNotOptimize(core.step_fifo(0.0));
  }
  state.counters["N"] = static_cast<double>(ports);
  state.counters["p99_us"] = core.latency().quantile_us(0.99);
  state.counters["alloc_events"] = static_cast<double>(core.stats().alloc_events);
}
BENCHMARK(BM_OnlineFifoDecision)->Arg(16)->Arg(32);

// ---- end-to-end daemon throughput ----------------------------------------
//
// One iteration = a whole daemon lifetime: Args{0} coflows streamed one at
// a time from the generator (never materialized), every arrival flowing
// through the event queue into the drain-replan policy.  items/s is
// coflows scheduled per second, daemon overhead included.

void BM_OnlineDaemonThroughput(benchmark::State& state) {
  const int coflows = static_cast<int>(state.range(0));
  GeneratorOptions gen;
  gen.num_ports = 16;
  gen.num_coflows = coflows;
  gen.seed = 993;
  gen.mean_interarrival = 0.01;
  sim::OnlineDaemonOptions opt;
  opt.core = soak_options();
  std::uint64_t finished = 0;
  for (auto _ : state) {
    ArrivalStream stream(gen);
    sim::PullSource<ArrivalStream> source(stream);
    sim::OnlineDaemon daemon(OnlinePolicyKind::kDrainReplanRecoMul, opt);
    daemon.reserve(static_cast<std::size_t>(coflows));
    finished = daemon.run(source).stats.finished;
    benchmark::DoNotOptimize(finished);
  }
  state.SetItemsProcessed(state.iterations() * coflows);
  state.counters["N"] = 16.0;
  state.counters["finished"] = static_cast<double>(finished);
}
BENCHMARK(BM_OnlineDaemonThroughput)->Arg(100)->Arg(400);

// ---- baseline reporter ---------------------------------------------------

/// Console output plus an in-memory collection of per-benchmark results,
/// flushed to `--baseline_json=FILE` as {name: {ns_per_op, p99_us, N}}.
class BaselineReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double ns_per_op = 0.0;
    double p99_us = 0.0;
    double n = 0.0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Row row;
      row.name = run.benchmark_name();
      row.ns_per_op = run.GetAdjustedRealTime();  // default time unit: ns
      const auto p99 = run.counters.find("p99_us");
      const auto n = run.counters.find("N");
      if (p99 != run.counters.end()) row.p99_us = p99->second.value;
      if (n != run.counters.end()) row.n = n->second.value;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  bool write_json(const std::string& path) const {
    // Headline: the decision-latency p99 on the largest replan shape.
    double headline_p99 = 0.0;
    for (const Row& r : rows_) {
      if (r.name == "BM_OnlineDecisionLatency/32/16") headline_p99 = r.p99_us;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n");
    for (std::size_t k = 0; k < rows_.size(); ++k) {
      const Row& r = rows_[k];
      std::fprintf(f, "  \"%s\": {\"ns_per_op\": %.1f, \"p99_us\": %.1f, \"N\": %.0f}%s\n",
                   r.name.c_str(), r.ns_per_op, r.p99_us, r.n,
                   (k + 1 < rows_.size() || headline_p99 > 0.0) ? "," : "");
    }
    if (headline_p99 > 0.0) {
      std::fprintf(f, "  \"online_decision_p99_us\": %.1f\n", headline_p99);
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::vector<char*> args;
  for (int a = 0; a < argc; ++a) {
    const std::string arg = argv[a];
    constexpr const char* kFlag = "--baseline_json=";
    if (arg.rfind(kFlag, 0) == 0) {
      baseline_path = arg.substr(std::string(kFlag).size());
    } else {
      args.push_back(argv[a]);
    }
  }
  int argn = static_cast<int>(args.size());
  benchmark::Initialize(&argn, args.data());
  if (benchmark::ReportUnrecognizedArguments(argn, args.data())) return 1;
  BaselineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!baseline_path.empty() && !reporter.write_json(baseline_path)) {
    std::fprintf(stderr, "failed to write %s\n", baseline_path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
