// Micro-benchmarks (google-benchmark) for the online scheduler path: the
// per-decision replan cycle (the daemon's admit->order->plan->commit hot
// loop), the serialized FIFO step, and end-to-end daemon throughput over a
// streamed Poisson arrival source.  These back the online subsystem's two
// first-class numbers: p99 decision latency and steady-state allocation
// events (see docs/ONLINE.md).
//
// `--baseline_json=FILE` writes a machine-readable baseline
// (name -> {ns_per_op, p99_us, N}) plus derived headline metrics; CI's
// perf-guard gates BM_OnlineDecisionLatency against the committed
// BENCH_online.json.  Timing and reporting come from the shared harness in
// bench_util.hpp (0.05 s min time x 3 repetitions, median recorded).
#define RECO_BENCH_WITH_GBENCH
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/coflow.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"
#include "sched/online_core.hpp"
#include "sim/online_daemon.hpp"
#include "trace/generator.hpp"

namespace {

using namespace reco;

constexpr Time kInf = std::numeric_limits<Time>::infinity();

std::vector<Coflow> batch_workload(int ports, int coflows, std::uint64_t seed) {
  GeneratorOptions o;
  o.num_ports = ports;
  o.num_coflows = coflows;
  o.seed = seed;
  return generate_workload(o);
}

OnlineCoreOptions soak_options() {
  OnlineCoreOptions o;
  // Benchmark the engine, not the unbounded result buffers.
  o.record_schedule = false;
  o.record_cct = false;
  return o;
}

// ---- per-decision replan cycle -------------------------------------------
//
// One iteration = one full daemon decision on a warm core: admit a batch of
// Args{ports, batch} coflows into recycled slots, order + packet-schedule +
// Reco-Mul transform them (the plan() call the latency histogram times),
// and commit the epoch.  After warm-up the cycle allocates nothing.

void BM_OnlineDecisionLatency(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  const auto block = batch_workload(ports, batch, 991);
  OnlineCore core(OnlinePolicyKind::kEpochRecoMul, soak_options());
  core.reserve(static_cast<std::size_t>(batch));
  for (auto _ : state) {
    for (const Coflow& c : block) core.submit(c);
    core.plan(0.0);
    benchmark::DoNotOptimize(core.commit(kInf));
  }
  state.counters["N"] = static_cast<double>(ports);
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["p99_us"] = core.latency().quantile_us(0.99);
  state.counters["alloc_events"] = static_cast<double>(core.stats().alloc_events);
}
BENCHMARK(BM_OnlineDecisionLatency)
    ->Args({16, 4})
    ->Args({16, 8})
    ->Args({32, 8})
    ->Args({32, 16});

// ---- serialized FIFO step ------------------------------------------------

void BM_OnlineFifoDecision(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const auto block = batch_workload(ports, 4, 992);
  OnlineCore core(OnlinePolicyKind::kFifoRecoSin, soak_options());
  core.reserve(block.size());
  for (auto _ : state) {
    for (const Coflow& c : block) core.submit(c);
    while (!core.idle()) benchmark::DoNotOptimize(core.step_fifo(0.0));
  }
  state.counters["N"] = static_cast<double>(ports);
  state.counters["p99_us"] = core.latency().quantile_us(0.99);
  state.counters["alloc_events"] = static_cast<double>(core.stats().alloc_events);
}
BENCHMARK(BM_OnlineFifoDecision)->Arg(16)->Arg(32);

// ---- end-to-end daemon throughput ----------------------------------------
//
// One iteration = a whole daemon lifetime: Args{0} coflows streamed one at
// a time from the generator (never materialized), every arrival flowing
// through the event queue into the drain-replan policy.  items/s is
// coflows scheduled per second, daemon overhead included.

void BM_OnlineDaemonThroughput(benchmark::State& state) {
  const int coflows = static_cast<int>(state.range(0));
  GeneratorOptions gen;
  gen.num_ports = 16;
  gen.num_coflows = coflows;
  gen.seed = 993;
  gen.mean_interarrival = 0.01;
  sim::OnlineDaemonOptions opt;
  opt.core = soak_options();
  std::uint64_t finished = 0;
  for (auto _ : state) {
    ArrivalStream stream(gen);
    sim::PullSource<ArrivalStream> source(stream);
    sim::OnlineDaemon daemon(OnlinePolicyKind::kDrainReplanRecoMul, opt);
    daemon.reserve(static_cast<std::size_t>(coflows));
    finished = daemon.run(source).stats.finished;
    benchmark::DoNotOptimize(finished);
  }
  state.SetItemsProcessed(state.iterations() * coflows);
  state.counters["N"] = 16.0;
  state.counters["finished"] = static_cast<double>(finished);
}
BENCHMARK(BM_OnlineDaemonThroughput)->Arg(100)->Arg(400);

// ---- live-telemetry sampling overhead ------------------------------------
//
// The throughput benchmark above re-run with obs enabled and the sim-time
// sampler ticking every 10 ms of sim time (plus the trace ring bounded, as
// a real scrape target would run).  write_json() turns the pair into a
// "sampler_overhead_pct" baseline entry — the online counterpart of the
// micro-kernel suite's telemetry_overhead_pct.  This is a deliberately
// aggressive rate (~100 samples over the ~1 s stream, far denser than any
// scraper needs), so the entry is an upper bound for tracking, not a gate:
// the off path stays one relaxed load + branch regardless.

void BM_OnlineDaemonSampled(benchmark::State& state) {
  const int coflows = static_cast<int>(state.range(0));
  GeneratorOptions gen;
  gen.num_ports = 16;
  gen.num_coflows = coflows;
  gen.seed = 993;
  gen.mean_interarrival = 0.01;
  sim::OnlineDaemonOptions opt;
  opt.core = soak_options();
  opt.sample_every = 0.01;
  const bool was_enabled = obs::enabled();
  const std::size_t old_capacity = obs::tracer().capacity();
  obs::set_enabled(true);
  obs::tracer().set_capacity(4096);  // bound the span buffer inside the loop
  std::uint64_t finished = 0;
  for (auto _ : state) {
    ArrivalStream stream(gen);
    sim::PullSource<ArrivalStream> source(stream);
    sim::OnlineDaemon daemon(OnlinePolicyKind::kDrainReplanRecoMul, opt);
    daemon.reserve(static_cast<std::size_t>(coflows));
    finished = daemon.run(source).stats.finished;
    benchmark::DoNotOptimize(finished);
  }
  obs::set_enabled(was_enabled);
  obs::tracer().set_capacity(old_capacity);
  obs::sim_sampler().clear();
  if (!was_enabled) obs::reset();  // keep user-requested telemetry, drop ours
  state.SetItemsProcessed(state.iterations() * coflows);
  state.counters["N"] = 16.0;
  state.counters["finished"] = static_cast<double>(finished);
}
BENCHMARK(BM_OnlineDaemonSampled)->Arg(100);

// ---- baseline derived metrics --------------------------------------------

/// Headline metrics: the decision-latency p99 on the largest replan shape,
/// and the sampled-vs-plain daemon throughput delta.
std::vector<std::pair<std::string, double>> derived_metrics(
    const std::vector<bench::gbench::Row>& rows) {
  std::vector<std::pair<std::string, double>> out;
  double plain = 0.0;
  double sampled = 0.0;
  for (const auto& r : rows) {
    if (r.name == "BM_OnlineDecisionLatency/32/16") {
      const double p99 = r.counter("p99_us");
      if (p99 > 0.0) out.emplace_back("online_decision_p99_us", p99);
    } else if (r.name == "BM_OnlineDaemonThroughput/100") {
      plain = r.ns_per_op;
    } else if (r.name == "BM_OnlineDaemonSampled/100") {
      sampled = r.ns_per_op;
    }
  }
  if (plain > 0.0 && sampled > 0.0) {
    out.emplace_back("sampler_overhead_pct", 100.0 * (sampled - plain) / plain);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  return reco::bench::gbench::run_main(argc, argv, {"p99_us", "N"}, derived_metrics);
}
