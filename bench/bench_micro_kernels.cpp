// Micro-benchmarks (google-benchmark) for the hot kernels: matching,
// decomposition, and scheduling throughput.  These are not paper figures;
// they justify the incremental-matcher design (see DESIGN.md §3).
#include <benchmark/benchmark.h>

#include "bvn/bvn.hpp"
#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"
#include "matching/bottleneck.hpp"
#include "matching/hopcroft_karp.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "trace/generator.hpp"
#include "trace/rng.hpp"

namespace {

using namespace reco;

Matrix dense_random(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) m.at(i, j) = rng.uniform(0.5, 10.0);
  }
  return m;
}

void BM_HopcroftKarpDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix m = dense_random(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold_matching(m, 0.5).size);
  }
}
BENCHMARK(BM_HopcroftKarpDense)->Arg(32)->Arg(64)->Arg(128);

void BM_BottleneckMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix m = dense_random(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottleneck_perfect_matching(m)->bottleneck);
  }
}
BENCHMARK(BM_BottleneckMatching)->Arg(32)->Arg(64);

void BM_RegularizeAndStuff(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix m = dense_random(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stuff_granular(regularize(m, 0.25), 0.25).nnz());
  }
}
BENCHMARK(BM_RegularizeAndStuff)->Arg(64)->Arg(150);

void BM_BvnFirstMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix m = stuff(dense_random(n, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bvn_decompose(m, BvnPolicy::kFirstMatching).num_assignments());
  }
}
BENCHMARK(BM_BvnFirstMatching)->Arg(16)->Arg(32)->Arg(64);

void BM_RecoSinEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix m = dense_random(n, 5);
  const Time delta = 0.25;
  for (auto _ : state) {
    const CircuitSchedule s = reco_sin(m, delta);
    benchmark::DoNotOptimize(execute_all_stop(s, m, delta).cct);
  }
}
BENCHMARK(BM_RecoSinEndToEnd)->Arg(16)->Arg(32)->Arg(64);

void BM_SolsticeEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix m = dense_random(n, 6);
  for (auto _ : state) {
    const CircuitSchedule s = solstice(m);
    benchmark::DoNotOptimize(execute_all_stop(s, m, 0.25).cct);
  }
}
BENCHMARK(BM_SolsticeEndToEnd)->Arg(16)->Arg(32)->Arg(64);

void BM_WorkloadGeneration(benchmark::State& state) {
  GeneratorOptions o;
  o.num_ports = 150;
  o.num_coflows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_workload(o).size());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(64)->Arg(526);

}  // namespace

BENCHMARK_MAIN();
