// Micro-benchmarks (google-benchmark) for the hot kernels: matching,
// decomposition, and scheduling throughput.  These are not paper figures;
// they justify the sparse support-index design (see DESIGN.md §3).
//
// Inputs are density-swept: every kernel runs at DS in {0.05, 0.1, 0.2,
// 0.5, 1.0} (second Arg, in permille) plus a trace-like input that mimics
// the paper's Facebook workload (a coflow touches a small rectangle of
// ports).  Each sparse kernel has a retained dense twin from
// reco::dense_reference, so `sparse vs dense at equal nnz` is a single
// grep through the output.  Every benchmark reports `nnz` and `N` as
// counters.
//
// `--baseline_json=FILE` writes a machine-readable baseline
// (name -> {ns_per_op, nnz, N}); see docs/SIMULATOR.md for how
// BENCH_microkernels.json is regenerated.  Timing and reporting come from
// the shared harness in bench_util.hpp: 0.05 s min time x 3 repetitions,
// median recorded (robust to scheduler-noise outliers).
#define RECO_BENCH_WITH_GBENCH
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "bvn/bvn.hpp"
#include "bvn/dense_reference.hpp"
#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"
#include "core/support_index.hpp"
#include "matching/bottleneck.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/matching_engine.hpp"
#include "obs/obs.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "trace/generator.hpp"
#include "trace/rng.hpp"

namespace {

using namespace reco;

/// Bernoulli-sparse demand: each entry is nonzero with probability
/// `density` (the DS knob of the density sweep).
Matrix sparse_random(int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < density) m.at(i, j) = rng.uniform(0.5, 10.0);
    }
  }
  return m;
}

/// Trace-like sparsity: a coflow touches a small set of senders and
/// receivers (Table I's sparse class dominates the Facebook trace), so its
/// demand lives in a thin random rectangle of the port matrix.
Matrix trace_like(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n);
  const int senders = 2 + static_cast<int>(rng.uniform_int(n / 8 + 1));
  const int receivers = 2 + static_cast<int>(rng.uniform_int(n / 8 + 1));
  std::vector<int> rows, cols;
  for (int k = 0; k < senders; ++k) rows.push_back(static_cast<int>(rng.uniform_int(n)));
  for (int k = 0; k < receivers; ++k) cols.push_back(static_cast<int>(rng.uniform_int(n)));
  for (const int i : rows) {
    for (const int j : cols) {
      if (rng.uniform(0.0, 1.0) < 0.7) m.at(i, j) = rng.uniform(0.5, 10.0);
    }
  }
  return m;
}

/// Density sweep shared by the kernel benchmarks: Args are {N, DS_permille}.
void DensitySweep(benchmark::internal::Benchmark* b) {
  for (const int n : {32, 64, 128}) {
    for (const int permille : {50, 100, 200, 500, 1000}) b->Args({n, permille});
  }
}

Matrix swept_input(const benchmark::State& state, std::uint64_t seed) {
  const int n = static_cast<int>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  return sparse_random(n, density, seed + static_cast<std::uint64_t>(n) * 1000 +
                                       static_cast<std::uint64_t>(state.range(1)));
}

void report_shape(benchmark::State& state, const Matrix& m) {
  state.counters["N"] = static_cast<double>(m.n());
  state.counters["nnz"] = static_cast<double>(m.nnz());
}

// ---- threshold matching (Hopcroft–Karp over the support) -----------------

void BM_ThresholdMatchingDense(benchmark::State& state) {
  const Matrix m = swept_input(state, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold_matching(m, 0.5).size);
  }
  report_shape(state, m);
}
BENCHMARK(BM_ThresholdMatchingDense)->Apply(DensitySweep);

void BM_ThresholdMatchingSparse(benchmark::State& state) {
  const SupportIndex idx(swept_input(state, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold_matching(idx, 0.5).size);
  }
  report_shape(state, idx.matrix());
}
BENCHMARK(BM_ThresholdMatchingSparse)->Apply(DensitySweep);

// ---- exact bottleneck matching -------------------------------------------

void BM_BottleneckMatchingDense(benchmark::State& state) {
  const Matrix m = stuff(swept_input(state, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottleneck_perfect_matching(m)->bottleneck);
  }
  report_shape(state, m);
}
BENCHMARK(BM_BottleneckMatchingDense)->Apply(DensitySweep);

void BM_BottleneckMatchingSparse(benchmark::State& state) {
  const SupportIndex idx(stuff(swept_input(state, 2)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottleneck_perfect_matching(idx)->bottleneck);
  }
  report_shape(state, idx.matrix());
}
BENCHMARK(BM_BottleneckMatchingSparse)->Apply(DensitySweep);

// Seed twin: the retained pre-engine implementation (cold recursive
// Hopcroft-Karp per probe, per-call adjacency).  write_json() divides this
// by the engine row at {128, 200} into `bottleneck_speedup_vs_seed`.
void BM_BottleneckMatchingSeedSparse(benchmark::State& state) {
  const SupportIndex idx(stuff(swept_input(state, 2)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dense_reference::bottleneck_perfect_matching_reference(idx)->bottleneck);
  }
  report_shape(state, idx.matrix());
}
BENCHMARK(BM_BottleneckMatchingSeedSparse)->Apply(DensitySweep);

// Engine with a caller-owned scratch, the hot-path calling convention:
// after the first iteration every solve warm-starts from the previous
// matching and reuses every buffer (steady state allocates nothing).
void BM_BottleneckAmortized(benchmark::State& state) {
  const SupportIndex idx(stuff(swept_input(state, 2)));
  MatchingScratch scratch;
  for (auto _ : state) {
    bottleneck_solve(idx, scratch);
    benchmark::DoNotOptimize(scratch.bottleneck);
  }
  report_shape(state, idx.matrix());
}
BENCHMARK(BM_BottleneckAmortized)->Apply(DensitySweep);

// ---- warm-started exact-bottleneck peel ----------------------------------
//
// The twins isolate engine layer 3: an exact-bottleneck peel with one
// scratch carried across rounds (each round repairs the previous round's
// matching) vs the same loop paying a cold solve per round.

void BM_PeelWarmStart(benchmark::State& state) {
  const Matrix stuffed = stuff(swept_input(state, 2));
  for (auto _ : state) {
    SupportIndex m(stuffed);
    MatchingScratch scratch;  // one arena for the whole peel
    int rounds = 0;
    while (m.nnz() > 0 && bottleneck_solve(m, scratch)) {
      for (int i = 0; i < m.n(); ++i) {
        const int j = scratch.final_left[i];
        m.set(i, j, clamp_zero(m.at(i, j) - scratch.bottleneck));
      }
      ++rounds;
    }
    benchmark::DoNotOptimize(rounds);
  }
  report_shape(state, stuffed);
}
BENCHMARK(BM_PeelWarmStart)->Args({64, 200})->Args({128, 200});

void BM_PeelColdStart(benchmark::State& state) {
  const Matrix stuffed = stuff(swept_input(state, 2));
  for (auto _ : state) {
    SupportIndex m(stuffed);
    int rounds = 0;
    while (m.nnz() > 0) {
      MatchingScratch scratch;  // cold: fresh buffers, no warm seed
      if (!bottleneck_solve(m, scratch)) break;
      for (int i = 0; i < m.n(); ++i) {
        const int j = scratch.final_left[i];
        m.set(i, j, clamp_zero(m.at(i, j) - scratch.bottleneck));
      }
      ++rounds;
    }
    benchmark::DoNotOptimize(rounds);
  }
  report_shape(state, stuffed);
}
BENCHMARK(BM_PeelColdStart)->Args({64, 200})->Args({128, 200});

// ---- BvN peel (the acceptance kernel: >= 3x at N=128, DS <= 0.2) ---------

void BM_BvnPeelDense(benchmark::State& state) {
  const Matrix m = stuff(swept_input(state, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dense_reference::bvn_decompose(m, BvnPolicy::kFirstMatching).num_assignments());
  }
  report_shape(state, m);
}
BENCHMARK(BM_BvnPeelDense)->Apply(DensitySweep);

void BM_BvnPeelSparse(benchmark::State& state) {
  const Matrix m = stuff(swept_input(state, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bvn_decompose(SupportIndex(m), BvnPolicy::kFirstMatching).num_assignments());
  }
  report_shape(state, m);
}
BENCHMARK(BM_BvnPeelSparse)->Apply(DensitySweep);

void BM_BvnPeelDenseTraceLike(benchmark::State& state) {
  const Matrix m = stuff(trace_like(static_cast<int>(state.range(0)), 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dense_reference::bvn_decompose(m, BvnPolicy::kFirstMatching).num_assignments());
  }
  report_shape(state, m);
}
BENCHMARK(BM_BvnPeelDenseTraceLike)->Arg(64)->Arg(128);

void BM_BvnPeelSparseTraceLike(benchmark::State& state) {
  const Matrix m = stuff(trace_like(static_cast<int>(state.range(0)), 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bvn_decompose(SupportIndex(m), BvnPolicy::kFirstMatching).num_assignments());
  }
  report_shape(state, m);
}
BENCHMARK(BM_BvnPeelSparseTraceLike)->Arg(64)->Arg(128);

// ---- telemetry overhead on the peel kernel -------------------------------
//
// The disabled/enabled twin pins the telemetry design budget: with
// collection off the peel must run within 2% of an uninstrumented build
// (one relaxed load + branch per round).  write_json() below turns the
// pair into a "telemetry_overhead_pct" baseline entry.

void BM_BvnPeelSparseTelemetryOff(benchmark::State& state) {
  const Matrix m = stuff(swept_input(state, 4));
  obs::set_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bvn_decompose(SupportIndex(m), BvnPolicy::kFirstMatching).num_assignments());
  }
  report_shape(state, m);
}
BENCHMARK(BM_BvnPeelSparseTelemetryOff)->Args({128, 200});

void BM_BvnPeelSparseTelemetryOn(benchmark::State& state) {
  const Matrix m = stuff(swept_input(state, 4));
  const bool was_enabled = obs::enabled();
  const std::size_t old_capacity = obs::tracer().capacity();
  obs::set_enabled(true);
  obs::tracer().set_capacity(4096);  // bound the span buffer inside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bvn_decompose(SupportIndex(m), BvnPolicy::kFirstMatching).num_assignments());
  }
  obs::set_enabled(was_enabled);
  obs::tracer().set_capacity(old_capacity);
  if (!was_enabled) obs::reset();  // keep user-requested telemetry, drop ours
  report_shape(state, m);
}
BENCHMARK(BM_BvnPeelSparseTelemetryOn)->Args({128, 200});

// ---- stuffing ------------------------------------------------------------

void BM_StuffDense(benchmark::State& state) {
  const Matrix m = swept_input(state, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense_reference::stuff(m).nnz());
  }
  report_shape(state, m);
}
BENCHMARK(BM_StuffDense)->Apply(DensitySweep);

void BM_StuffSparse(benchmark::State& state) {
  const Matrix m = swept_input(state, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stuff(m).nnz());
  }
  report_shape(state, m);
}
BENCHMARK(BM_StuffSparse)->Apply(DensitySweep);

void BM_RegularizeAndStuff(benchmark::State& state) {
  const Matrix m = swept_input(state, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stuff_granular(regularize(m, 0.25), 0.25).nnz());
  }
  report_shape(state, m);
}
BENCHMARK(BM_RegularizeAndStuff)->Apply(DensitySweep);

// ---- end-to-end schedulers ----------------------------------------------

void BM_SolsticeDense(benchmark::State& state) {
  const Matrix m = swept_input(state, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense_reference::solstice(m).num_assignments());
  }
  report_shape(state, m);
}
BENCHMARK(BM_SolsticeDense)->Apply(DensitySweep);

void BM_SolsticeSparse(benchmark::State& state) {
  const Matrix m = swept_input(state, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solstice(m).num_assignments());
  }
  report_shape(state, m);
}
BENCHMARK(BM_SolsticeSparse)->Apply(DensitySweep);

void BM_RecoSinEndToEnd(benchmark::State& state) {
  const Matrix m = swept_input(state, 5);
  const Time delta = 0.25;
  for (auto _ : state) {
    const CircuitSchedule s = reco_sin(m, delta);
    benchmark::DoNotOptimize(execute_all_stop(s, m, delta).cct);
  }
  report_shape(state, m);
}
BENCHMARK(BM_RecoSinEndToEnd)->Args({16, 1000})->Args({32, 500})->Args({64, 200});

void BM_WorkloadGeneration(benchmark::State& state) {
  GeneratorOptions o;
  o.num_ports = 150;
  o.num_coflows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_workload(o).size());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(64)->Arg(526);

// ---- baseline derived metrics --------------------------------------------

/// Headline metrics appended to the baseline JSON: the telemetry
/// enabled/disabled delta on the peel kernel (the <2% disabled-overhead
/// acceptance budget lives in the Off twin) and the engine-vs-seed speedup
/// on the headline sparse config (the >= 3x bar of the amortized-engine
/// work).  Zero-valued inputs yield non-finite ratios, which the harness
/// drops.
std::vector<std::pair<std::string, double>> derived_metrics(
    const std::vector<bench::gbench::Row>& rows) {
  using bench::gbench::row_ns;
  const double peel_off = row_ns(rows, "BM_BvnPeelSparseTelemetryOff/128/200");
  const double peel_on = row_ns(rows, "BM_BvnPeelSparseTelemetryOn/128/200");
  const double seed_ns = row_ns(rows, "BM_BottleneckMatchingSeedSparse/128/200");
  const double engine_ns = row_ns(rows, "BM_BottleneckMatchingSparse/128/200");
  return {
      {"telemetry_overhead_pct", 100.0 * (peel_on - peel_off) / peel_off},
      {"bottleneck_speedup_vs_seed", seed_ns / engine_ns},
  };
}

}  // namespace

int main(int argc, char** argv) {
  return reco::bench::gbench::run_main(argc, argv, {"nnz", "N"}, derived_metrics);
}
