// Theorem 1: plain stuffing+BvN is Omega(N)-approximate in an OCS.
// The adversarial family: dense matrices of tiny, mutually-ragged demands.
// Plain BvN peels ~N^2 permutations (each paying a reconfiguration) while
// Reco-Sin collapses everything to ~N establishments; their CCT ratio thus
// grows linearly with N.
#include <cstdio>

#include "bench_util.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/bvn_baseline.hpp"
#include "sched/reco_sin.hpp"
#include "stats/report.hpp"
#include "trace/rng.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  Rng rng(opts.seed);
  const Time delta = 1.0;  // demands are << delta: reconfigurations dominate

  ReportTable t("Theorem 1: Omega(N) blow-up of plain BvN vs Reco-Sin");
  t.set_header({"N", "BvN reconfigs", "Reco reconfigs", "BvN CCT", "Reco CCT", "CCT ratio"});

  for (const int n : {4, 8, 16, 32, 48}) {
    Matrix d(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) d.at(i, j) = rng.uniform(0.01, 0.1);
    }
    const ExecutionResult plain = execute_all_stop(bvn_baseline(d), d, delta);
    const ExecutionResult reco = execute_all_stop(reco_sin(d, delta), d, delta);
    t.add_row({std::to_string(n), std::to_string(plain.reconfigurations),
               std::to_string(reco.reconfigurations), fmt_double(plain.cct, 1),
               fmt_double(reco.cct, 1), fmt_ratio(plain.cct / reco.cct)});
  }
  t.print();
  std::printf("Expected shape: the CCT ratio grows roughly linearly in N — plain BvN\n"
              "needs ~N^2 establishments, Reco-Sin exactly N on this family.\n");
  return 0;
}
