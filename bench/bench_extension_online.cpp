// Extension: online coflow arrivals (the paper's Sec. VIII future work).
// Poisson arrivals at varying load; epoch-batched Reco-Mul vs FIFO
// Reco-Sin, measuring weighted CCT from each coflow's arrival.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sched/online.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);

  GeneratorOptions g;
  g.num_ports = opts.ports > 0 ? opts.ports : 50;
  g.num_coflows = opts.coflows > 0 ? opts.coflows : 80;
  g.seed = opts.seed;
  g.delta = opts.delta;
  g.c_threshold = opts.c_threshold;

  OnlineOptions online;
  online.delta = g.delta;
  online.c_threshold = g.c_threshold;

  ReportTable t("Extension: online arrivals — three policies");
  t.set_header({"mean gap", "epochs E/R", "Epoch w*CCT", "Replan w*CCT", "FIFO w*CCT",
                "FIFO/Epoch", "Replan/Epoch"});

  for (const Time gap : {0.0, 1e-3, 10e-3, 100e-3}) {
    g.mean_interarrival = gap;
    const auto coflows = generate_workload(g);
    const OnlineScheduleResult epoch = schedule_online(coflows, OnlinePolicyKind::kEpochRecoMul, online);
    const OnlineScheduleResult replan =
        schedule_online(coflows, OnlinePolicyKind::kDrainReplanRecoMul, online);
    const OnlineScheduleResult fifo = schedule_online(coflows, OnlinePolicyKind::kFifoRecoSin, online);
    t.add_row({gap == 0.0 ? "all at 0" : fmt_time(gap),
               std::to_string(epoch.epochs) + "/" + std::to_string(replan.epochs),
               fmt_double(epoch.total_weighted_cct, 4),
               fmt_double(replan.total_weighted_cct, 4),
               fmt_double(fifo.total_weighted_cct, 4),
               fmt_ratio(fifo.total_weighted_cct / epoch.total_weighted_cct),
               fmt_ratio(replan.total_weighted_cct / epoch.total_weighted_cct)});
  }

  std::printf("Workload: %d coflows on %d ports; delta = %s; Poisson arrivals.\n\n",
              g.num_coflows, g.num_ports, fmt_time(g.delta).c_str());
  t.print();
  // Load sweep: mean CCT vs offered load for the two Reco-Mul policies.
  ReportTable sweep("Extension: offered-load sweep (mean CCT, seconds)");
  sweep.set_header({"mean gap", "Epoch", "Drain-replan", "Replan/Epoch"});
  for (const Time gap : {0.5e-3, 2e-3, 8e-3, 32e-3}) {
    g.mean_interarrival = gap;
    const auto coflows = generate_workload(g);
    const OnlineScheduleResult epoch =
        schedule_online(coflows, OnlinePolicyKind::kEpochRecoMul, online);
    const OnlineScheduleResult replan =
        schedule_online(coflows, OnlinePolicyKind::kDrainReplanRecoMul, online);
    std::vector<double> e(epoch.cct.begin(), epoch.cct.end());
    std::vector<double> r(replan.cct.begin(), replan.cct.end());
    sweep.add_row({fmt_time(gap), fmt_double(mean(e), 4), fmt_double(mean(r), 4),
                   fmt_ratio(mean(r) / mean(e))});
  }
  sweep.print();

  std::printf("Expected: batching beats FIFO everywhere; reactive drain-and-replan\n"
              "matches epoch batching on bursts (one epoch anyway) and pulls far ahead\n"
              "as arrivals spread out, because newcomers no longer wait for a whole\n"
              "epoch to drain.\n");
  return 0;
}
