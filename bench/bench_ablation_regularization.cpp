// Ablation: which parts of Reco-Sin matter?
//   A. full Reco-Sin (regularize + max-min BvN, early-stop execution);
//   B. no regularization (stuff + max-min BvN);
//   C. regularization but naive first-matching BvN;
//   D. full Reco-Sin *without* early stop (planned coefficients charged).
// Measured per density class on the generated trace.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "bvn/bvn.hpp"
#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

namespace {

using namespace reco;

struct Variant {
  const char* name;
  CircuitSchedule (*schedule)(const Matrix&, Time);
  bool early_stop;
};

CircuitSchedule full_reco(const Matrix& d, Time delta) { return reco_sin(d, delta); }

CircuitSchedule no_regularization(const Matrix& d, Time /*delta*/) {
  return bvn_decompose(stuff(d), BvnPolicy::kMaxMinAmortized);
}

CircuitSchedule naive_matching(const Matrix& d, Time delta) {
  return reco_sin(d, delta, BvnPolicy::kFirstMatching);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const GeneratorOptions g = bench::single_coflow_workload(opts);
  const int samples = opts.samples > 0 ? opts.samples : (opts.full ? 1 << 30 : 10);
  const auto coflows = generate_workload(g);

  const Variant variants[] = {
      {"A full Reco-Sin", full_reco, true},
      {"B no regularization", no_regularization, true},
      {"C first-matching BvN", naive_matching, true},
      {"D no early stop", full_reco, false},
  };

  ReportTable t("Ablation: Reco-Sin components (mean over sampled coflows)");
  t.set_header({"variant", "density", "reconfigs", "CCT", "CCT vs A"});

  for (DensityClass cls : bench::kAllClasses) {
    const std::vector<int> picked = bench::sample_class(coflows, cls, samples);
    double reference = 0.0;
    for (const Variant& v : variants) {
      std::vector<double> reconfigs;
      std::vector<double> ccts;
      for (int k : picked) {
        const Matrix& d = coflows[k].demand;
        const CircuitSchedule s = v.schedule(d, g.delta);
        if (v.early_stop) {
          const ExecutionResult r = execute_all_stop(s, d, g.delta);
          reconfigs.push_back(r.reconfigurations);
          ccts.push_back(r.cct);
        } else {
          reconfigs.push_back(s.num_assignments());
          ccts.push_back(s.planned_transmission_time() + s.num_assignments() * g.delta);
        }
      }
      const double cct = mean(ccts);
      if (v.name[0] == 'A') reference = cct;
      t.add_row({v.name, bench::class_name(cls), fmt_double(mean(reconfigs), 1), fmt_time(cct),
                 fmt_ratio(reference > 0 ? cct / reference : 0.0)});
    }
  }
  t.print();
  std::printf("B isolates the value of demand regularization; C the value of max-min\n"
              "matching; D the value of early-stop execution (Fig. 2's 618-vs-900 gap).\n");
  return 0;
}
