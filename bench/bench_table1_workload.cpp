// Tables I & II: the workload itself.  Generates the synthetic
// Facebook-like trace and prints its density and transmission-mode mix
// next to the paper's published numbers.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/report.hpp"
#include "trace/generator.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  GeneratorOptions g = bench::single_coflow_workload(opts);

  const auto coflows = generate_workload(g);
  const WorkloadStats s = compute_stats(coflows);

  std::printf("Workload: %d coflows, %d ports, seed %llu\n\n", g.num_coflows, g.num_ports,
              static_cast<unsigned long long>(g.seed));

  ReportTable t1("Table I: coflow types by demand-matrix density");
  t1.set_header({"class", "generated %", "paper %"});
  t1.add_row({"sparse", fmt_double(s.density_percent[0]), "86.31"});
  t1.add_row({"normal", fmt_double(s.density_percent[1]), "5.13"});
  t1.add_row({"dense", fmt_double(s.density_percent[2]), "8.56"});
  t1.print();

  ReportTable t2("Table II: coflow categories by transmission mode");
  t2.set_header({"mode", "count % (gen)", "count % (paper)", "size % (gen)", "size % (paper)"});
  const char* names[] = {"S2S", "S2M", "M2S", "M2M"};
  const double paper_count[] = {23.38, 9.89, 40.11, 26.62};
  const double paper_size[] = {0.005, 0.024, 0.028, 99.943};
  for (int m = 0; m < 4; ++m) {
    t2.add_row({names[m], fmt_double(s.mode_count_percent[m]), fmt_double(paper_count[m]),
                fmt_double(s.mode_size_percent[m], 3), fmt_double(paper_size[m], 3)});
  }
  t2.print();

  std::printf("min nonzero demand = %s (optical threshold c*delta = %s)\n",
              fmt_time(s.min_nonzero_demand).c_str(),
              fmt_time(g.c_threshold * g.delta).c_str());
  return 0;
}
