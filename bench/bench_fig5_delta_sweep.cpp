// Fig. 5(a) + 5(b): impact of the reconfiguration delay delta on
// single-coflow scheduling, per density class.
//
// 5(a): reconfiguration counts vs delta — Solstice's count is flat in
//       delta (it never looks at delta) while Reco-Sin's falls as
//       regularization aligns more demand (paper: Solstice needs
//       2.10-3.10x more for sparse, 7.55-8.12x otherwise).
// 5(b): CCT normalized to the lower bound rho + tau*delta (paper:
//       Solstice up to 32.66x/23.89x/18.26x LB vs Reco-Sin's
//       21.00x/3.96x/2.72x at the largest delta).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/lower_bound.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const GeneratorOptions g = bench::single_coflow_workload(opts);
  const int samples = opts.samples > 0 ? opts.samples : (opts.full ? 1 << 30 : 8);
  const auto coflows = generate_workload(g);

  const Time deltas[] = {100e-6, 1e-3, 10e-3, 100e-3};

  ReportTable ta("Fig. 5(a): reconfigurations vs delta");
  ta.set_header({"density", "delta", "Reco-Sin", "Solstice", "ratio"});
  ReportTable tb("Fig. 5(b): CCT normalized to lower bound vs delta");
  tb.set_header({"density", "delta", "Reco-Sin/LB", "Solstice/LB"});

  for (DensityClass cls : bench::kAllClasses) {
    const std::vector<int> picked = bench::sample_class(coflows, cls, samples);
    // Solstice schedules are delta-independent: compute once per coflow
    // (fanned out across the runtime pool, results in trace order).
    const std::vector<CircuitSchedule> solstice_schedules =
        bench::sweep(picked, [&](int k) { return solstice(coflows[k].demand); });

    for (const Time delta : deltas) {
      struct PointResult {
        double reco_reconf = 0, sol_reconf = 0, reco_norm = 0, sol_norm = 0;
      };
      std::vector<std::size_t> indices(picked.size());
      for (std::size_t p = 0; p < picked.size(); ++p) indices[p] = p;
      const std::vector<PointResult> per_coflow = bench::sweep(indices, [&](std::size_t p) {
        const Matrix& d = coflows[picked[p]].demand;
        const Time lb = single_coflow_lower_bound(d, delta);
        const ExecutionResult reco = execute_all_stop(reco_sin(d, delta), d, delta);
        const ExecutionResult sol = execute_all_stop(solstice_schedules[p], d, delta);
        return PointResult{static_cast<double>(reco.reconfigurations),
                           static_cast<double>(sol.reconfigurations), reco.cct / lb,
                           sol.cct / lb};
      });
      std::vector<double> reco_reconf, sol_reconf, reco_norm, sol_norm;
      for (const PointResult& r : per_coflow) {
        reco_reconf.push_back(r.reco_reconf);
        sol_reconf.push_back(r.sol_reconf);
        reco_norm.push_back(r.reco_norm);
        sol_norm.push_back(r.sol_norm);
      }
      ta.add_row({bench::class_name(cls), fmt_time(delta), fmt_double(mean(reco_reconf), 1),
                  fmt_double(mean(sol_reconf), 1),
                  fmt_ratio(normalized_ratio(sol_reconf, reco_reconf))});
      tb.add_row({bench::class_name(cls), fmt_time(delta), fmt_ratio(mean(reco_norm)),
                  fmt_ratio(mean(sol_norm))});
    }
  }

  std::printf("Workload: %d coflows on %d ports; up to %d per class; delta swept over\n"
              "100us..100ms as in Sec. V-C.\n\n",
              g.num_coflows, g.num_ports, samples);
  ta.print();
  tb.print();
  std::printf("Expected shapes: Solstice's reconfig count is flat in delta; Reco-Sin's\n"
              "falls with delta; the CCT/LB gap widens with delta and narrows with\n"
              "density (paper endpoints: 32.66/23.89/18.26x vs 21.00/3.96/2.72x).\n");
  return 0;
}
