// Scalability: planner wall-time and schedule size vs fabric width, for
// the two main single-coflow schedulers on dense coflows.  Documents the
// practical cost of the incremental-matching design (DESIGN.md §3): both
// planners stay polynomial, with Reco-Sin emitting ~N assignments on
// regularization-friendly demand versus Solstice's ~N log(range) slices.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "stats/report.hpp"
#include "trace/rng.hpp"

namespace {

using namespace reco;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  Rng rng(opts.seed);
  const Time delta = opts.delta;

  ReportTable t("Scalability: dense coflow, planner cost vs fabric width");
  t.set_header({"N", "flows", "Reco plan ms", "Reco assigns", "Solstice plan ms",
                "Solstice assigns", "CCT ratio"});

  // Demand matrices are drawn sequentially (one RNG stream, independent of
  // thread count); the per-width planning points then fan out across the
  // runtime pool.  Per-point ms are wall-clock: with --threads>1 the points
  // overlap, so read the per-planner columns from a --threads=1 run and use
  // the parallel run for end-to-end suite latency.
  const std::vector<int> widths = {32, 64, 128, opts.full ? 256 : 192};
  std::vector<Matrix> demands;
  for (const int n : widths) {
    Matrix d(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (rng.uniform() < 0.6) d.at(i, j) = rng.uniform(4 * delta, 400 * delta);
      }
    }
    demands.push_back(std::move(d));
  }

  struct Row {
    double reco_ms = 0, sol_ms = 0, cct_ratio = 0;
    int nnz = 0, reco_assigns = 0, sol_assigns = 0;
  };
  std::vector<std::size_t> points(widths.size());
  for (std::size_t p = 0; p < points.size(); ++p) points[p] = p;
  const std::vector<Row> rows = bench::sweep(points, [&](std::size_t p) {
    const Matrix& d = demands[p];
    Row row;
    row.nnz = d.nnz();

    const auto t0 = Clock::now();
    const CircuitSchedule reco = reco_sin(d, delta);
    row.reco_ms = ms_since(t0);
    row.reco_assigns = reco.num_assignments();

    const auto t1 = Clock::now();
    const CircuitSchedule sol = solstice(d);
    row.sol_ms = ms_since(t1);
    row.sol_assigns = sol.num_assignments();

    const ExecutionResult reco_run = execute_all_stop(reco, d, delta);
    const ExecutionResult sol_run = execute_all_stop(sol, d, delta);
    row.cct_ratio = sol_run.cct / reco_run.cct;
    return row;
  });
  for (std::size_t p = 0; p < widths.size(); ++p) {
    t.add_row({std::to_string(widths[p]), std::to_string(rows[p].nnz),
               fmt_double(rows[p].reco_ms, 1), std::to_string(rows[p].reco_assigns),
               fmt_double(rows[p].sol_ms, 1), std::to_string(rows[p].sol_assigns),
               fmt_ratio(rows[p].cct_ratio)});
  }

  std::printf("Random dense coflows (60%% fill), delta = %s; --full extends to N=256.\n\n",
              fmt_time(delta).c_str());
  t.print();
  std::printf("Expected: planner time grows ~N^3-ish for both (incremental matching\n"
              "keeps the constant small); Reco-Sin's assignment count tracks the\n"
              "demand/delta granularity while Solstice's tracks N log(max/floor).\n");
  return 0;
}
