// Scalability: planner wall-time and schedule size vs fabric width, for
// the two main single-coflow schedulers on dense coflows.  Documents the
// practical cost of the incremental-matching design (DESIGN.md §3): both
// planners stay polynomial, with Reco-Sin emitting ~N assignments on
// regularization-friendly demand versus Solstice's ~N log(range) slices.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "stats/report.hpp"
#include "trace/rng.hpp"

namespace {

using namespace reco;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  Rng rng(opts.seed);
  const Time delta = opts.delta;

  ReportTable t("Scalability: dense coflow, planner cost vs fabric width");
  t.set_header({"N", "flows", "Reco plan ms", "Reco assigns", "Solstice plan ms",
                "Solstice assigns", "CCT ratio"});

  for (const int n : {32, 64, 128, opts.full ? 256 : 192}) {
    Matrix d(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (rng.uniform() < 0.6) d.at(i, j) = rng.uniform(4 * delta, 400 * delta);
      }
    }
    const auto t0 = Clock::now();
    const CircuitSchedule reco = reco_sin(d, delta);
    const double reco_ms = ms_since(t0);

    const auto t1 = Clock::now();
    const CircuitSchedule sol = solstice(d);
    const double sol_ms = ms_since(t1);

    const ExecutionResult reco_run = execute_all_stop(reco, d, delta);
    const ExecutionResult sol_run = execute_all_stop(sol, d, delta);

    t.add_row({std::to_string(n), std::to_string(d.nnz()), fmt_double(reco_ms, 1),
               std::to_string(reco.num_assignments()), fmt_double(sol_ms, 1),
               std::to_string(sol.num_assignments()),
               fmt_ratio(sol_run.cct / reco_run.cct)});
  }

  std::printf("Random dense coflows (60%% fill), delta = %s; --full extends to N=256.\n\n",
              fmt_time(delta).c_str());
  t.print();
  std::printf("Expected: planner time grows ~N^3-ish for both (incremental matching\n"
              "keeps the constant small); Reco-Sin's assignment count tracks the\n"
              "demand/delta granularity while Solstice's tracks N log(max/floor).\n");
  return 0;
}
