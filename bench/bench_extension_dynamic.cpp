// Extension: dynamic (per-decision) OCS control vs plan-based online
// policies, under Poisson arrivals.  The event-driven fabric runs OMCO-
// style greedy controllers that re-decide at every drain; the plan-based
// policies batch and transform via Algorithm 2.  Also contrasts the
// clairvoyant SEBF priority with the non-clairvoyant least-attained-
// service (Aalo-flavoured) priority.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sched/online.hpp"
#include "sim/multi_fabric.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);

  GeneratorOptions g;
  g.num_ports = opts.ports > 0 ? opts.ports : 40;
  g.num_coflows = opts.coflows > 0 ? opts.coflows : 60;
  g.seed = opts.seed;
  g.delta = opts.delta;
  g.c_threshold = opts.c_threshold;
  g.mean_interarrival = 5e-3;
  const auto coflows = generate_workload(g);

  OnlineOptions online;
  online.delta = g.delta;
  online.c_threshold = g.c_threshold;

  ReportTable t("Extension: dynamic controllers vs plan-based online policies");
  t.set_header({"policy", "sum w*CCT", "avg CCT", "reconfigs"});

  const auto add_fabric_row = [&](const char* name, sim::MultiFabricReport r) {
    std::vector<double> cct(r.cct.begin(), r.cct.end());
    t.add_row({name, fmt_double(r.total_weighted_cct, 4), fmt_time(mean(cct)),
               std::to_string(r.reconfigurations)});
  };
  const auto add_plan_row = [&](const char* name, OnlineScheduleResult r) {
    std::vector<double> cct(r.cct.begin(), r.cct.end());
    t.add_row({name, fmt_double(r.total_weighted_cct, 4), fmt_time(mean(cct)),
               std::to_string(r.reconfigurations)});
  };

  using Priority = sim::GreedyPriorityController::Priority;
  {
    sim::GreedyPriorityController c(g.delta, Priority::kSmallestResidualFirst, false);
    add_fabric_row("dynamic greedy SEBF (tight hold)", simulate_multi_coflow(c, coflows, g.delta));
  }
  {
    sim::GreedyPriorityController c(g.delta, Priority::kSmallestResidualFirst, true);
    add_fabric_row("dynamic greedy SEBF (drain hold)", simulate_multi_coflow(c, coflows, g.delta));
  }
  {
    sim::GreedyPriorityController c(g.delta, Priority::kLeastServedFirst, true);
    add_fabric_row("dynamic greedy LAS (non-clairvoyant)",
                   simulate_multi_coflow(c, coflows, g.delta));
  }
  add_plan_row("plan: epoch Reco-Mul",
               schedule_online(coflows, OnlinePolicyKind::kEpochRecoMul, online));
  add_plan_row("plan: drain-replan Reco-Mul",
               schedule_online(coflows, OnlinePolicyKind::kDrainReplanRecoMul, online));
  add_plan_row("plan: FIFO Reco-Sin",
               schedule_online(coflows, OnlinePolicyKind::kFifoRecoSin, online));

  std::printf("Workload: %d coflows on %d ports; delta = %s; Poisson arrivals\n"
              "(mean gap %s).\n\n",
              g.num_coflows, g.num_ports, fmt_time(g.delta).c_str(), fmt_time(5e-3).c_str());
  t.print();
  std::printf("Reading: per-decision control reacts instantly to arrivals but pays in\n"
              "establishments (tight hold) or stranded ports (drain hold); Algorithm-2\n"
              "planning amortizes reconfigurations across aligned batches.  The LAS row\n"
              "shows the price of non-clairvoyance relative to its SEBF twin.\n");
  return 0;
}
