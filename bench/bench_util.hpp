// Shared plumbing for the experiment binaries: command-line options, the
// canonical workloads, and per-density-class sampling.
//
// Every experiment binary accepts:
//   --coflows=N  --ports=N  --seed=S  --samples=N  --threads=N  --full
// where --full switches to the paper's native scale (526 coflows on a
// 150-port fabric).  Defaults are tuned so the whole bench suite completes
// in minutes on one laptop core; EXPERIMENTS.md records both scales.
// --threads (or the RECO_THREADS env var) sets the parallel runtime's
// fan-out; results are bit-identical at every thread count.
// --trace-out=F / --metrics-out=F enable telemetry and flush it at exit
// (google-benchmark owns main(), so the writers run from an atexit hook).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/coflow.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"
#include "trace/generator.hpp"

namespace reco::bench {

struct BenchOptions {
  int coflows = 0;   // 0 = per-bench default
  int ports = 0;     // 0 = per-bench default
  int samples = 0;   // 0 = per-bench default (per density class)
  std::uint64_t seed = 20190707;
  bool full = false;
  Time delta = 100e-6;
  double c_threshold = 4.0;
  std::string csv_dir;      ///< when set, benches export raw per-sample CSVs here
  std::string trace_out;    ///< when set, telemetry is on and a trace JSON is flushed at exit
  std::string metrics_out;  ///< when set, telemetry is on and a metrics CSV is flushed at exit
};

inline BenchOptions parse_args(int argc, char** argv) {
  BenchOptions o;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto val = [&](const char* prefix) -> const char* {
      return arg.size() > std::strlen(prefix) && arg.rfind(prefix, 0) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (const char* v = val("--coflows=")) {
      o.coflows = std::atoi(v);
    } else if (const char* v = val("--ports=")) {
      o.ports = std::atoi(v);
    } else if (const char* v = val("--samples=")) {
      o.samples = std::atoi(v);
    } else if (const char* v = val("--seed=")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--csv=")) {
      o.csv_dir = v;
    } else if (const char* v = val("--trace-out=")) {
      o.trace_out = v;
    } else if (const char* v = val("--metrics-out=")) {
      o.metrics_out = v;
    } else if (const char* v = val("--threads=")) {
      runtime::set_thread_count(std::atoi(v));
    } else if (arg == "--full") {
      o.full = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "options: --coflows=N --ports=N --samples=N --seed=S --threads=N --full --csv=DIR\n"
          "         --trace-out=FILE --metrics-out=FILE (enable telemetry, flush at exit)\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  obs::init_from_env();
  if (!o.trace_out.empty() || !o.metrics_out.empty()) {
    obs::set_enabled(true);
    obs::flush_at_exit(o.trace_out, o.metrics_out);
  }
  return o;
}

/// Single-coflow experiments run at paper scale by default (the per-coflow
/// algorithms are cheap enough); sampling keeps the dense class affordable.
inline GeneratorOptions single_coflow_workload(const BenchOptions& o) {
  GeneratorOptions g;
  g.num_ports = o.ports > 0 ? o.ports : 150;
  g.num_coflows = o.coflows > 0 ? o.coflows : 526;
  g.seed = o.seed;
  g.delta = o.delta;
  g.c_threshold = o.c_threshold;
  return g;
}

/// Multi-coflow experiments default to a medium scale where the LP-II-GB
/// interval-indexed LP is exactly solvable by the dense simplex; --full
/// selects paper scale (the LP ordering then falls back to BSSI, which the
/// binary reports).
inline GeneratorOptions multi_coflow_workload(const BenchOptions& o) {
  GeneratorOptions g;
  g.num_ports = o.ports > 0 ? o.ports : (o.full ? 150 : 50);
  g.num_coflows = o.coflows > 0 ? o.coflows : (o.full ? 526 : 120);
  g.seed = o.seed;
  g.delta = o.delta;
  g.c_threshold = o.c_threshold;
  return g;
}

/// Evaluate one experiment point per element of `points`, fanning out
/// across the runtime thread pool, and return the results in input order
/// (so report tables and CSVs are identical at every thread count).  Each
/// point is typically a whole pipeline run — the coarse-grained, perfectly
/// independent parallelism of the fig5/fig9/scalability sweeps.
template <typename T, typename Fn>
auto sweep(const std::vector<T>& points, Fn&& fn) {
  return runtime::parallel_map(points, std::forward<Fn>(fn));
}

/// Up to `max_per_class` coflow indices of each density class, preserving
/// trace order (a deterministic subsample for the per-class CDFs).
inline std::vector<int> sample_class(const std::vector<Coflow>& coflows, DensityClass cls,
                                     int max_per_class) {
  std::vector<int> out;
  for (int k = 0; k < static_cast<int>(coflows.size()); ++k) {
    if (coflows[k].density_class() == cls) {
      out.push_back(k);
      if (static_cast<int>(out.size()) >= max_per_class) break;
    }
  }
  return out;
}

inline const char* class_name(DensityClass cls) {
  switch (cls) {
    case DensityClass::kSparse: return "sparse";
    case DensityClass::kNormal: return "normal";
    case DensityClass::kDense: return "dense";
  }
  return "?";
}

inline constexpr DensityClass kAllClasses[] = {DensityClass::kSparse, DensityClass::kNormal,
                                               DensityClass::kDense};

/// Re-assign contiguous ids 0..n-1 (the multi-coflow pipelines index their
/// per-coflow results by id).
inline std::vector<Coflow> reindex(std::vector<Coflow> coflows) {
  for (std::size_t k = 0; k < coflows.size(); ++k) coflows[k].id = static_cast<int>(k);
  return coflows;
}

/// The coflows of one density class, re-indexed for standalone scheduling.
inline std::vector<Coflow> subset_by_class(const std::vector<Coflow>& coflows,
                                           DensityClass cls) {
  std::vector<Coflow> out;
  for (const Coflow& c : coflows) {
    if (c.density_class() == cls) out.push_back(c);
  }
  return reindex(std::move(out));
}

/// Set every weight to 1 (the unweighted-CCT experiments).
inline std::vector<Coflow> unit_weighted(std::vector<Coflow> coflows) {
  for (Coflow& c : coflows) c.weight = 1.0;
  return coflows;
}

}  // namespace reco::bench
