// Shared plumbing for the experiment binaries: command-line options, the
// canonical workloads, and per-density-class sampling.
//
// Every experiment binary accepts:
//   --coflows=N  --ports=N  --seed=S  --samples=N  --threads=N  --full
// where --full switches to the paper's native scale (526 coflows on a
// 150-port fabric).  Defaults are tuned so the whole bench suite completes
// in minutes on one laptop core; EXPERIMENTS.md records both scales.
// --threads (or the RECO_THREADS env var) sets the parallel runtime's
// fan-out; results are bit-identical at every thread count.
// --trace-out=F / --metrics-out=F enable telemetry and flush it at exit
// (google-benchmark owns main(), so the writers run from an atexit hook).
//
// Binaries that are google-benchmark suites (bench_micro_kernels,
// bench_online_daemon, bench_scale) define RECO_BENCH_WITH_GBENCH before
// including this header and call bench::gbench::run_main() — the shared
// baseline reporter with min-time / repetition-median stability controls
// (see the gbench section at the bottom).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/coflow.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"
#include "trace/generator.hpp"

namespace reco::bench {

struct BenchOptions {
  int coflows = 0;   // 0 = per-bench default
  int ports = 0;     // 0 = per-bench default
  int samples = 0;   // 0 = per-bench default (per density class)
  std::uint64_t seed = 20190707;
  bool full = false;
  Time delta = 100e-6;
  double c_threshold = 4.0;
  std::string csv_dir;      ///< when set, benches export raw per-sample CSVs here
  std::string trace_out;    ///< when set, telemetry is on and a trace JSON is flushed at exit
  std::string metrics_out;  ///< when set, telemetry is on and a metrics CSV is flushed at exit
};

inline BenchOptions parse_args(int argc, char** argv) {
  BenchOptions o;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto val = [&](const char* prefix) -> const char* {
      return arg.size() > std::strlen(prefix) && arg.rfind(prefix, 0) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (const char* v = val("--coflows=")) {
      o.coflows = std::atoi(v);
    } else if (const char* v = val("--ports=")) {
      o.ports = std::atoi(v);
    } else if (const char* v = val("--samples=")) {
      o.samples = std::atoi(v);
    } else if (const char* v = val("--seed=")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--csv=")) {
      o.csv_dir = v;
    } else if (const char* v = val("--trace-out=")) {
      o.trace_out = v;
    } else if (const char* v = val("--metrics-out=")) {
      o.metrics_out = v;
    } else if (const char* v = val("--threads=")) {
      runtime::set_thread_count(std::atoi(v));
    } else if (arg == "--full") {
      o.full = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "options: --coflows=N --ports=N --samples=N --seed=S --threads=N --full --csv=DIR\n"
          "         --trace-out=FILE --metrics-out=FILE (enable telemetry, flush at exit)\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  obs::init_from_env();
  if (!o.trace_out.empty() || !o.metrics_out.empty()) {
    obs::set_enabled(true);
    obs::flush_at_exit(o.trace_out, o.metrics_out);
  }
  return o;
}

/// Single-coflow experiments run at paper scale by default (the per-coflow
/// algorithms are cheap enough); sampling keeps the dense class affordable.
inline GeneratorOptions single_coflow_workload(const BenchOptions& o) {
  GeneratorOptions g;
  g.num_ports = o.ports > 0 ? o.ports : 150;
  g.num_coflows = o.coflows > 0 ? o.coflows : 526;
  g.seed = o.seed;
  g.delta = o.delta;
  g.c_threshold = o.c_threshold;
  return g;
}

/// Multi-coflow experiments default to a medium scale where the LP-II-GB
/// interval-indexed LP is exactly solvable by the dense simplex; --full
/// selects paper scale (the LP ordering then falls back to BSSI, which the
/// binary reports).
inline GeneratorOptions multi_coflow_workload(const BenchOptions& o) {
  GeneratorOptions g;
  g.num_ports = o.ports > 0 ? o.ports : (o.full ? 150 : 50);
  g.num_coflows = o.coflows > 0 ? o.coflows : (o.full ? 526 : 120);
  g.seed = o.seed;
  g.delta = o.delta;
  g.c_threshold = o.c_threshold;
  return g;
}

/// Evaluate one experiment point per element of `points`, fanning out
/// across the runtime thread pool, and return the results in input order
/// (so report tables and CSVs are identical at every thread count).  Each
/// point is typically a whole pipeline run — the coarse-grained, perfectly
/// independent parallelism of the fig5/fig9/scalability sweeps.
template <typename T, typename Fn>
auto sweep(const std::vector<T>& points, Fn&& fn) {
  return runtime::parallel_map(points, std::forward<Fn>(fn));
}

/// Up to `max_per_class` coflow indices of each density class, preserving
/// trace order (a deterministic subsample for the per-class CDFs).
inline std::vector<int> sample_class(const std::vector<Coflow>& coflows, DensityClass cls,
                                     int max_per_class) {
  std::vector<int> out;
  for (int k = 0; k < static_cast<int>(coflows.size()); ++k) {
    if (coflows[k].density_class() == cls) {
      out.push_back(k);
      if (static_cast<int>(out.size()) >= max_per_class) break;
    }
  }
  return out;
}

inline const char* class_name(DensityClass cls) {
  switch (cls) {
    case DensityClass::kSparse: return "sparse";
    case DensityClass::kNormal: return "normal";
    case DensityClass::kDense: return "dense";
  }
  return "?";
}

inline constexpr DensityClass kAllClasses[] = {DensityClass::kSparse, DensityClass::kNormal,
                                               DensityClass::kDense};

/// Re-assign contiguous ids 0..n-1 (the multi-coflow pipelines index their
/// per-coflow results by id).
inline std::vector<Coflow> reindex(std::vector<Coflow> coflows) {
  for (std::size_t k = 0; k < coflows.size(); ++k) coflows[k].id = static_cast<int>(k);
  return coflows;
}

/// The coflows of one density class, re-indexed for standalone scheduling.
inline std::vector<Coflow> subset_by_class(const std::vector<Coflow>& coflows,
                                           DensityClass cls) {
  std::vector<Coflow> out;
  for (const Coflow& c : coflows) {
    if (c.density_class() == cls) out.push_back(c);
  }
  return reindex(std::move(out));
}

/// Set every weight to 1 (the unweighted-CCT experiments).
inline std::vector<Coflow> unit_weighted(std::vector<Coflow> coflows) {
  for (Coflow& c : coflows) c.weight = 1.0;
  return coflows;
}

}  // namespace reco::bench

// ---------------------------------------------------------------------------
// google-benchmark harness (gbench suites only; guarded so the report-table
// experiment binaries, which do not link google-benchmark, are unaffected)
// ---------------------------------------------------------------------------
#ifdef RECO_BENCH_WITH_GBENCH

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace reco::bench::gbench {

/// One baseline row: the benchmark's time plus every user counter it set.
struct Row {
  std::string name;
  double ns_per_op = 0.0;
  std::map<std::string, double> counters;

  double counter(const std::string& key) const {
    const auto it = counters.find(key);
    return it == counters.end() ? 0.0 : it->second;
  }
};

/// Console output plus an in-memory collection of per-benchmark results.
///
/// Stability: when repetitions are active (the default injected by
/// run_main), the recorded figure is the *median* repetition — a single
/// descheduling blip inflates the mean and is the documented source of the
/// BM_ThresholdMatchingDense/128/500 outlier in older baselines; the
/// median is immune to it.  Median aggregate rows are stored under the
/// bare benchmark name, so baseline JSON keys are identical with and
/// without repetitions.
class BaselineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      std::string name = run.benchmark_name();
      bool is_median = false;
      if (run.run_type == Run::RT_Aggregate) {
        constexpr const char kSuffix[] = "_median";
        constexpr std::size_t kLen = sizeof(kSuffix) - 1;
        if (name.size() > kLen && name.compare(name.size() - kLen, kLen, kSuffix) == 0) {
          name.resize(name.size() - kLen);
          is_median = true;
        } else {
          continue;  // mean/stddev/cv: not baseline material
        }
      }
      Row row;
      row.name = std::move(name);
      row.ns_per_op = run.GetAdjustedRealTime();  // default time unit: ns
      for (const auto& kv : run.counters) row.counters[kv.first] = kv.second.value;
      // Ground-truth parallelism of the measuring box, recorded per row so
      // a perf guard elsewhere can tell "this thread sweep had cores to
      // scale onto" from "this row was measured oversubscribed".
      row.counters["cores"] = static_cast<double>(runtime::hardware_cores());
      upsert(std::move(row), is_median);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  void upsert(Row row, bool is_median) {
    for (Row& r : rows_) {
      if (r.name == row.name) {
        if (is_median) r = std::move(row);  // median supersedes a per-iteration row
        return;
      }
    }
    rows_.push_back(std::move(row));
  }

  std::vector<Row> rows_;
};

inline double row_ns(const std::vector<Row>& rows, const std::string& name) {
  for (const Row& r : rows) {
    if (r.name == name) return r.ns_per_op;
  }
  return 0.0;
}

/// Derived headline metrics appended to the baseline JSON (speedup ratios,
/// overhead percentages); entries with non-finite values are dropped.
using DerivedFn = std::vector<std::pair<std::string, double>> (*)(const std::vector<Row>&);

inline bool write_baseline_json(const std::string& path, const std::vector<Row>& rows,
                                const std::vector<std::string>& counter_keys,
                                const std::vector<std::pair<std::string, double>>& derived) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const Row& r = rows[k];
    std::fprintf(f, "  \"%s\": {\"ns_per_op\": %.1f", r.name.c_str(), r.ns_per_op);
    for (const std::string& key : counter_keys) {
      std::fprintf(f, ", \"%s\": %.1f", key.c_str(), r.counter(key));
    }
    std::fprintf(f, "}%s\n", (k + 1 < rows.size() || !derived.empty()) ? "," : "");
  }
  for (std::size_t k = 0; k < derived.size(); ++k) {
    std::fprintf(f, "  \"%s\": %.2f%s\n", derived[k].first.c_str(), derived[k].second,
                 k + 1 < derived.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// Shared main() body for the gbench suites.  Handles `--baseline_json=F`
/// and `--threads=N`, and injects stability defaults unless the caller
/// overrides them on the command line: 0.05 s minimum measuring time and
/// 3 repetitions with aggregate-only reporting (the baseline then records
/// the median repetition; see BaselineReporter).
inline int run_main(int argc, char** argv, std::vector<std::string> counter_keys,
                    DerivedFn derived_fn = nullptr) {
  // Every baseline row carries the measuring box's core count (see
  // BaselineReporter); make sure the JSON writer emits it.
  if (std::find(counter_keys.begin(), counter_keys.end(), "cores") == counter_keys.end()) {
    counter_keys.push_back("cores");
  }
  std::string baseline_path;
  std::vector<std::string> storage;
  bool has_min_time = false, has_reps = false, has_aggregates = false;
  for (int a = 0; a < argc; ++a) {
    const std::string arg = argv[a];
    constexpr const char kBaseline[] = "--baseline_json=";
    constexpr const char kThreads[] = "--threads=";
    if (arg.rfind(kBaseline, 0) == 0) {
      baseline_path = arg.substr(sizeof(kBaseline) - 1);
      continue;
    }
    if (arg.rfind(kThreads, 0) == 0) {
      runtime::set_thread_count(std::atoi(arg.c_str() + sizeof(kThreads) - 1));
      continue;
    }
    if (arg.rfind("--benchmark_min_time", 0) == 0) has_min_time = true;
    if (arg.rfind("--benchmark_repetitions", 0) == 0) has_reps = true;
    if (arg.rfind("--benchmark_report_aggregates_only", 0) == 0) has_aggregates = true;
    storage.push_back(arg);
  }
  if (!has_min_time) storage.push_back("--benchmark_min_time=0.05");
  if (!has_reps) storage.push_back("--benchmark_repetitions=3");
  if (!has_aggregates) storage.push_back("--benchmark_report_aggregates_only=true");
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int argn = static_cast<int>(args.size());
  benchmark::Initialize(&argn, args.data());
  if (benchmark::ReportUnrecognizedArguments(argn, args.data())) return 1;
  BaselineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!baseline_path.empty()) {
    auto derived = derived_fn ? derived_fn(reporter.rows())
                              : std::vector<std::pair<std::string, double>>{};
    derived.erase(std::remove_if(derived.begin(), derived.end(),
                                 [](const auto& d) { return !std::isfinite(d.second); }),
                  derived.end());
    if (!write_baseline_json(baseline_path, reporter.rows(), counter_keys, derived)) {
      std::fprintf(stderr, "failed to write %s\n", baseline_path.c_str());
      return 1;
    }
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace reco::bench::gbench

#endif  // RECO_BENCH_WITH_GBENCH
