// Fig. 7: minimizing the *unweighted* CCT for multiple coflows — Reco-Mul
// vs LP-II-GB vs SEBF+Solstice, per density class and mixed.
//
// Paper reference (avg, p95 in parentheses): on sparse coflows
// SEBF+Solstice is 8.87x (6.56x) and LP-II-GB 5.47x (2.80x) worse than
// Reco-Mul; on normal/dense the gaps are 2.52x (1.91x) and 3.41x (2.88x);
// on the mix LP-II-GB needs 4.71x (2.08x) and SEBF+Solstice 8.04x (5.67x).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sched/multi_baselines.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const GeneratorOptions g = bench::multi_coflow_workload(opts);
  const auto all = bench::unit_weighted(generate_workload(g));

  ReportTable t("Fig. 7: normalized unweighted CCT vs Reco-Mul");
  t.set_header({"workload", "n", "LP avg", "LP p95", "SEBF avg", "SEBF p95"});

  struct Case {
    const char* name;
    std::vector<Coflow> coflows;
  };
  std::vector<Case> cases;
  for (DensityClass cls : bench::kAllClasses) {
    cases.push_back({bench::class_name(cls), bench::subset_by_class(all, cls)});
  }
  cases.push_back({"all", bench::reindex(all)});

  for (const Case& cs : cases) {
    if (cs.coflows.empty()) {
      t.add_row({cs.name, "0", "-", "-", "-", "-"});
      continue;
    }
    const MultiScheduleResult reco = reco_mul_pipeline(cs.coflows, g.delta, g.c_threshold);
    const MultiScheduleResult lp = lp_ii_gb(cs.coflows, g.delta);
    const MultiScheduleResult sebf = sebf_solstice(cs.coflows, g.delta);
    std::vector<double> reco_cct(reco.cct.begin(), reco.cct.end());
    std::vector<double> lp_cct(lp.cct.begin(), lp.cct.end());
    std::vector<double> sebf_cct(sebf.cct.begin(), sebf.cct.end());
    t.add_row({cs.name, std::to_string(cs.coflows.size()),
               fmt_ratio(normalized_ratio(lp_cct, reco_cct)),
               fmt_ratio(percentile(lp_cct, 95) / percentile(reco_cct, 95)),
               fmt_ratio(normalized_ratio(sebf_cct, reco_cct)),
               fmt_ratio(percentile(sebf_cct, 95) / percentile(reco_cct, 95))});
  }

  std::printf("Workload: %d coflows on %d ports (use --full for 526/150); delta = %s,\n"
              "c = %.0f; unit weights.\n\n",
              g.num_coflows, g.num_ports, fmt_time(g.delta).c_str(), g.c_threshold);
  t.print();
  std::printf("Paper: sparse LP 5.47x (2.80x), SEBF 8.87x (6.56x); normal/dense 2.52x\n"
              "(1.91x) and 3.41x (2.88x); mixed LP 4.71x (2.08x), SEBF 8.04x (5.67x).\n");
  return 0;
}
