// Ablation: planned vs adaptive control.  The paper precomputes schedules
// offline; an event-driven controller could instead re-decide from the
// live residual after every drain.  How much does adaptivity buy on top of
// Algorithm 1 — and how far does the classic adaptive max-weight loop
// (Helios) get without regularization?
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/lower_bound.hpp"
#include "sched/reco_sin.hpp"
#include "sim/fabric.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  GeneratorOptions g = bench::single_coflow_workload(opts);
  if (opts.ports == 0 && !opts.full) g.num_ports = 64;  // Hungarian is O(N^3) per round
  const int samples = opts.samples > 0 ? opts.samples : (opts.full ? 1 << 30 : 8);
  const auto coflows = generate_workload(g);

  ReportTable t("Ablation: planned Reco-Sin vs adaptive controllers (CCT / LB)");
  t.set_header({"density", "n", "planned", "adaptive-Reco", "greedy max-weight", "reconf P/A/G"});

  for (DensityClass cls : bench::kAllClasses) {
    const std::vector<int> picked = bench::sample_class(coflows, cls, samples);
    std::vector<double> planned, adaptive, greedy;
    long rp = 0;
    long ra = 0;
    long rg = 0;
    for (int k : picked) {
      const Matrix& d = coflows[k].demand;
      const Time lb = single_coflow_lower_bound(d, g.delta);
      sim::ReplayController replay(reco_sin(d, g.delta));
      const sim::SimulationReport p = sim::simulate_single_coflow(replay, d, g.delta);
      sim::AdaptiveRecoController adapt(g.delta);
      const sim::SimulationReport a = sim::simulate_single_coflow(adapt, d, g.delta);
      sim::GreedyMaxWeightController max_weight(g.delta);
      const sim::SimulationReport m = sim::simulate_single_coflow(max_weight, d, g.delta);
      planned.push_back(p.cct / lb);
      adaptive.push_back(a.cct / lb);
      greedy.push_back(m.cct / lb);
      rp += p.reconfigurations;
      ra += a.reconfigurations;
      rg += m.reconfigurations;
    }
    t.add_row({bench::class_name(cls), std::to_string(picked.size()), fmt_ratio(mean(planned)),
               fmt_ratio(mean(adaptive)), fmt_ratio(mean(greedy)),
               std::to_string(rp) + "/" + std::to_string(ra) + "/" + std::to_string(rg)});
  }

  std::printf("Workload: %d coflows on %d ports; delta = %s; up to %d per class;\n"
              "event-driven fabric throughout.\n\n",
              g.num_coflows, g.num_ports, fmt_time(g.delta).c_str(), samples);
  t.print();
  std::printf("Reading: re-planning Algorithm 1 against the live residual (adaptive-\n"
              "Reco) trims ~30%% of establishments but barely moves the CCT — the\n"
              "precomputed schedule is already near the lower bound.  The adaptive\n"
              "hold-until-drained max-weight loop is remarkably strong on this trace\n"
              "(few, long establishments), but unlike Reco-Sin it carries no\n"
              "approximation guarantee: its CCT is a sum of per-round maxima, which an\n"
              "adversarial matrix can push far above rho (cf. Theorem 1's family for\n"
              "plain BvN).  Guarantees vs trace-luck is the real trade here.\n");
  return 0;
}
