// Fig. 9(a) + 9(b): multi-coflow sensitivity sweeps.
//
// 9(a): reconfiguration delay delta in {1us, 10us, 100us, 1ms, 10ms}.
//       Paper: LP-II-GB needs 1.61x at 1us, ~1.99x at 10us, 3.74x at
//       100us, then the gap *shrinks* to 1.17x/1.18x at 1ms/10ms because
//       reconfiguration time dominates everything.
// 9(b): optical transmission threshold c in {2..7} at delta = 100us.
//       Paper: the ratio grows monotonically from 1.74x to 3.744x.
//
// 9(a) keeps the trace FIXED while sweeping delta, as the paper does: the
// effective threshold c_eff = min demand / delta then shrinks with delta,
// and below c_eff = 1 Algorithm 2's feasibility assumption frays — the
// transform's legalization pass keeps schedules valid at the cost of
// alignment, which is exactly why the paper's ratio collapses at ms-scale
// delta.  9(b) regenerates the workload per point (min demand = c*delta is
// a property of which flows are admitted to the OCS).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sched/multi_baselines.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

namespace {

using namespace reco;

double weighted_cct_ratio(const std::vector<Coflow>& coflows, Time delta, double c) {
  const double reco = reco_mul_pipeline(coflows, delta, c).total_weighted_cct;
  const double lp = lp_ii_gb(coflows, delta).total_weighted_cct;
  return lp / reco;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);

  ReportTable ta("Fig. 9(a): normalized CCT (LP-II-GB / Reco-Mul) vs delta");
  ta.set_header({"delta", "c_eff", "ratio", "paper"});
  const Time deltas[] = {1e-6, 10e-6, 100e-6, 1e-3, 10e-3};
  const char* paper_delta[] = {"1.61x", "1.99x", "3.74x", "1.17x", "1.18x"};
  {
    // One fixed trace (generated at the default delta), swept over delta.
    const GeneratorOptions g = bench::multi_coflow_workload(opts);
    const auto coflows = generate_workload(g);
    double min_demand = 0.0;
    for (const Coflow& c : coflows) {
      const double mn = c.demand.min_nonzero();
      if (mn > 0.0 && (min_demand == 0.0 || mn < min_demand)) min_demand = mn;
    }
    // One full Reco-Mul + LP-II-GB run per delta point: ideal coarse-grained
    // fan-out for the runtime pool (results land in sweep order).
    const std::vector<Time> delta_points(std::begin(deltas), std::end(deltas));
    const std::vector<double> ratios = bench::sweep(delta_points, [&](Time delta) {
      return weighted_cct_ratio(coflows, delta, g.c_threshold);
    });
    for (std::size_t i = 0; i < std::size(deltas); ++i) {
      // The paper keeps c = 4 across the sweep; c_eff reports how much of
      // the d >= c*delta assumption actually survives at each delta.
      const double c_eff = min_demand / deltas[i];
      ta.add_row({fmt_time(deltas[i]), fmt_double(c_eff, 1), fmt_ratio(ratios[i]),
                  paper_delta[i]});
    }
  }

  ReportTable tb("Fig. 9(b): normalized CCT (LP-II-GB / Reco-Mul) vs c");
  tb.set_header({"c", "ratio", "paper"});
  const double cs[] = {2, 3, 4, 5, 6, 7};
  const char* paper_c[] = {"1.74x", "1.85x", "1.96x", "2.83x", "3.30x", "3.74x"};
  const std::vector<double> c_points(std::begin(cs), std::end(cs));
  const std::vector<double> c_ratios = bench::sweep(c_points, [&](double c) {
    bench::BenchOptions point = opts;
    point.c_threshold = c;
    const GeneratorOptions g = bench::multi_coflow_workload(point);
    const auto coflows = generate_workload(g);
    return weighted_cct_ratio(coflows, g.delta, g.c_threshold);
  });
  for (std::size_t i = 0; i < std::size(cs); ++i) {
    tb.add_row({fmt_double(cs[i], 0), fmt_ratio(c_ratios[i]), paper_c[i]});
  }

  const GeneratorOptions g = bench::multi_coflow_workload(opts);
  std::printf("Workload: %d coflows on %d ports per point (use --full for 526/150);\n"
              "regenerated per point to keep d >= c*delta.\n\n",
              g.num_coflows, g.num_ports);
  ta.print();
  tb.print();
  std::printf("Expected shapes: 9(a)'s ratio collapses once delta outgrows the flows\n"
              "(c_eff < 1: alignment breaks down, legalization takes over) — the\n"
              "paper's fall from 3.74x to ~1.17x; the low-delta hump needs the dense\n"
              "150-port coflows whose BvN schedules drown LP-II-GB in setups (--full).\n"
              "9(b) grows with c.\n");
  return 0;
}
