// Extension: hybrid circuit/packet fabric (Sec. VI's mice-flow argument).
// Workloads generated *without* the optical threshold clip, so genuine
// mice exist; each coflow runs (a) entirely through the OCS via Reco-Sin
// and (b) split at c*delta between the OCS and a slim packet fabric.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/hybrid.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/reco_sin.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);

  GeneratorOptions g;
  g.num_ports = opts.ports > 0 ? opts.ports : 64;
  g.num_coflows = opts.coflows > 0 ? opts.coflows : 150;
  g.seed = opts.seed;
  g.delta = opts.delta;
  g.c_threshold = opts.c_threshold;
  g.enforce_threshold = false;  // keep the mice
  const auto coflows = generate_workload(g);

  HybridOptions hybrid_opts;
  hybrid_opts.delta = g.delta;
  hybrid_opts.c_threshold = g.c_threshold;

  ReportTable t("Extension: hybrid OCS+packet vs pure OCS (per density class)");
  t.set_header({"density", "n", "mice %", "pure OCS CCT", "hybrid CCT", "pure/hybrid",
                "reconf saved"});

  for (DensityClass cls : bench::kAllClasses) {
    const std::vector<int> picked = bench::sample_class(coflows, cls, 1 << 30);
    if (picked.empty()) {
      t.add_row({bench::class_name(cls), "0", "-", "-", "-", "-", "-"});
      continue;
    }
    std::vector<double> pure_cct, hybrid_cct;
    double mice_volume = 0.0;
    double total_volume = 0.0;
    long reconf_pure = 0;
    long reconf_hybrid = 0;
    for (int k : picked) {
      const Matrix& d = coflows[k].demand;
      const ExecutionResult pure = execute_all_stop(reco_sin(d, g.delta), d, g.delta);
      const HybridResult mixed = hybrid_single_coflow(d, hybrid_opts);
      pure_cct.push_back(pure.cct);
      hybrid_cct.push_back(mixed.cct);
      mice_volume += mixed.mice_volume;
      total_volume += d.total();
      reconf_pure += pure.reconfigurations;
      reconf_hybrid += mixed.reconfigurations;
    }
    t.add_row({bench::class_name(cls), std::to_string(picked.size()),
               fmt_double(100.0 * mice_volume / total_volume),
               fmt_time(mean(pure_cct)), fmt_time(mean(hybrid_cct)),
               fmt_ratio(normalized_ratio(pure_cct, hybrid_cct)),
               fmt_double(100.0 * (1.0 - static_cast<double>(reconf_hybrid) /
                                             std::max<long>(1, reconf_pure))) + "%"});
  }

  std::printf("Workload: %d coflows on %d ports, threshold clip disabled; packet\n"
              "fabric at %.0f%% of circuit bandwidth.\n\n",
              g.num_coflows, g.num_ports, 100 * hybrid_opts.packet_bandwidth_fraction);
  t.print();

  // Second axis: how slim can the packet fabric be before borderline mice
  // (just under c*delta) become the coflow bottleneck?
  ReportTable sweep("Extension: packet-fabric bandwidth sweep (full mix)");
  sweep.set_header({"packet bw", "pure OCS CCT", "hybrid CCT", "pure/hybrid"});
  for (const double bw : {0.05, 0.1, 0.25, 0.5}) {
    HybridOptions o2 = hybrid_opts;
    o2.packet_bandwidth_fraction = bw;
    std::vector<double> pure_cct, hybrid_cct;
    for (const Coflow& c : coflows) {
      pure_cct.push_back(execute_all_stop(reco_sin(c.demand, g.delta), c.demand, g.delta).cct);
      hybrid_cct.push_back(hybrid_single_coflow(c.demand, o2).cct);
    }
    sweep.add_row({fmt_double(100 * bw, 0) + "%", fmt_time(mean(pure_cct)),
                   fmt_time(mean(hybrid_cct)),
                   fmt_ratio(normalized_ratio(pure_cct, hybrid_cct))});
  }
  sweep.print();

  // Multi-coflow hybrid: the whole workload scheduled jointly — elephants
  // through Reco-Mul, mice on the packet fabric concurrently.
  {
    const auto indexed = bench::reindex(coflows);
    const HybridMultiResult h = hybrid_multi_coflow(indexed, hybrid_opts);
    const MultiScheduleResult pure =
        reco_mul_pipeline(indexed, g.delta, g.c_threshold);
    ReportTable multi("Extension: multi-coflow hybrid vs pure-OCS Reco-Mul");
    multi.set_header({"scheme", "sum w*CCT", "reconfigs"});
    multi.add_row({"pure OCS (Reco-Mul)", fmt_double(pure.total_weighted_cct, 4),
                   std::to_string(pure.reconfigurations)});
    multi.add_row({"hybrid (Reco-Mul + packet mice)", fmt_double(h.total_weighted_cct, 4),
                   std::to_string(h.reconfigurations)});
    multi.print();
  }

  std::printf("Reading: offloading mice always saves reconfigurations (first table),\n"
              "but whether it saves *time* depends on the packet fabric: flows just\n"
              "under c*delta are slow on a 5-10%% fabric and become the bottleneck.\n"
              "That borderline band is exactly why deployed hybrids pick the\n"
              "threshold from the electrical bandwidth, not the other way around.\n");
  return 0;
}
