// Table III: approximation-ratio summary — the analytic guarantees, plus
// *measured* worst-case ratios over randomized sweeps as empirical
// certificates that the implementation honours the theory.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/lower_bound.hpp"
#include "core/slice.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/packet_scheduler.hpp"
#include "sched/reco_mul.hpp"
#include "sched/reco_sin.hpp"
#include "stats/report.hpp"
#include "trace/rng.hpp"

namespace {

using namespace reco;

Matrix random_demand(Rng& rng, int n, double density, double lo, double hi) {
  Matrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.uniform() < density) m.at(i, j) = rng.uniform(lo, hi);
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const int trials = opts.samples > 0 ? opts.samples : 200;
  Rng rng(opts.seed);

  // Measured worst case of CCT / (rho + tau*delta) for Reco-Sin.  Theorem 2
  // guarantees <= 2 against the *optimum*, hence also against this lower
  // bound; the measured value is usually far below 2.
  double worst_sin = 0.0;
  for (int t = 0; t < trials; ++t) {
    const int n = rng.uniform_int(3, 10);
    const Time delta = rng.uniform(0.01, 1.0);
    const Matrix d = random_demand(rng, n, rng.uniform(0.2, 1.0), 0.05, 5.0);
    if (d.nnz() == 0) continue;
    const ExecutionResult r = execute_all_stop(reco_sin(d, delta), d, delta);
    worst_sin = std::max(worst_sin, r.cct / single_coflow_lower_bound(d, delta));
  }

  // Measured worst case of T_k^o / T_k^p against Theorem 3's factor
  // (1 + 1/sqrt(c)) * (floor(sqrt c)+1)/floor(sqrt c), for c = 4.
  const double c = 4.0;
  const double theorem3 = (1.0 + 1.0 / std::sqrt(c)) * ((std::floor(std::sqrt(c)) + 1.0) /
                                                        std::floor(std::sqrt(c)));
  double worst_mul = 0.0;
  for (int t = 0; t < trials / 10; ++t) {
    const Time delta = 0.02;
    std::vector<Coflow> coflows;
    const int k_count = rng.uniform_int(4, 10);
    for (int k = 0; k < k_count; ++k) {
      Coflow cf;
      cf.id = k;
      cf.weight = rng.uniform();
      cf.demand = random_demand(rng, 6, rng.uniform(0.2, 0.8), c * delta, c * delta * 40);
      if (cf.demand.nnz() == 0) cf.demand.at(0, 0) = c * delta;
      coflows.push_back(std::move(cf));
    }
    const SliceSchedule packet = packet_schedule(coflows, bssi_order(coflows));
    const RecoMulSchedule rm = reco_mul_transform(packet, delta, c);
    const auto cct_p = completion_times(packet, k_count);
    const auto cct_o = completion_times(rm.real, k_count);
    for (int k = 0; k < k_count; ++k) {
      if (cct_p[k] > 0) worst_mul = std::max(worst_mul, cct_o[k] / cct_p[k]);
    }
  }

  ReportTable t("Table III: approximation ratios for coflow scheduling in OCS");
  t.set_header({"algorithm", "model", "single", "multiple", "measured worst"});
  t.add_row({"Sunflow [9]", "not-all-stop", "2", "-", "-"});
  t.add_row({"Reco-Sin", "all-stop", "2", "-", fmt_ratio(worst_sin) + " vs LB"});
  t.add_row({"Reco-Mul", "all-stop (+N)", "-", "4*(1+1/floor(sqrt(c)))^2",
             fmt_ratio(worst_mul) + " vs ALG_p"});
  t.print();

  std::printf("Certificates over %d randomized trials:\n", trials);
  std::printf("  Reco-Sin  worst CCT / (rho + tau*delta) = %.3f  (Theorem 2 bound: 2)\n",
              worst_sin);
  std::printf("  Reco-Mul  worst T_o / T_p (c=4)          = %.3f  (Theorem 3 factor: %.3f)\n",
              worst_mul, theorem3);
  std::printf("  (A small additive delta for the very first batch is outside the\n"
              "   paper's accounting; see tests/sched/test_reco_mul.cpp.)\n");
  return 0;
}
