// Fig. 6: minimizing the *weighted* CCT for multiple coflows — Reco-Mul vs
// LP-II-GB, per density class and for the full mixed workload.  Coflow
// weights are uniform in [0, 1] (Sec. V-D.1).
//
// Paper reference: Reco-Mul improves the average (95th-percentile)
// weighted CCT by 72.75% (35.85%) on sparse, 60.62% (50.17%) on normal,
// 54.75% (19.91%) on dense, and is 3.44x (1.64x) better on the mix.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/slice.hpp"
#include "sched/multi_baselines.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

namespace {

using namespace reco;

/// Weighted per-coflow CCTs of one scheme.
std::vector<double> weighted_ccts(const MultiScheduleResult& r, const std::vector<Coflow>& coflows) {
  std::vector<double> out;
  out.reserve(coflows.size());
  for (const Coflow& c : coflows) out.push_back(c.weight * r.cct[c.id]);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const GeneratorOptions g = bench::multi_coflow_workload(opts);
  const auto all = generate_workload(g);

  // Seed-variance check (rigor for the headline number): the mixed-
  // workload avg ratio across 5 regenerated traces.
  if (!opts.full) {
    std::vector<double> mixed_ratios;
    for (std::uint64_t s = 0; s < 5; ++s) {
      GeneratorOptions gs = g;
      gs.seed = g.seed + s;
      const auto trace = bench::reindex(generate_workload(gs));
      const MultiScheduleResult reco = reco_mul_pipeline(trace, gs.delta, gs.c_threshold);
      const MultiScheduleResult lp = lp_ii_gb(trace, gs.delta);
      mixed_ratios.push_back(lp.total_weighted_cct / reco.total_weighted_cct);
    }
    std::printf("seed variance (5 traces): mixed weighted-CCT ratio %.2fx .. %.2fx "
                "(mean %.2fx)\n\n",
                *std::min_element(mixed_ratios.begin(), mixed_ratios.end()),
                *std::max_element(mixed_ratios.begin(), mixed_ratios.end()),
                mean(mixed_ratios));
  }

  ReportTable t("Fig. 6: normalized weighted CCT, LP-II-GB vs Reco-Mul");
  t.set_header({"workload", "n", "avg ratio", "p95 ratio", "paper avg", "paper p95"});

  const char* paper_avg[] = {"3.67x", "2.54x", "2.21x", "3.44x"};
  const char* paper_p95[] = {"1.56x", "2.01x", "1.25x", "1.64x"};

  struct Case {
    const char* name;
    std::vector<Coflow> coflows;
  };
  std::vector<Case> cases;
  for (DensityClass cls : bench::kAllClasses) {
    cases.push_back({bench::class_name(cls), bench::subset_by_class(all, cls)});
  }
  cases.push_back({"all", bench::reindex(all)});

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& coflows = cases[i].coflows;
    if (coflows.empty()) {
      t.add_row({cases[i].name, "0", "-", "-", paper_avg[i], paper_p95[i]});
      continue;
    }
    const MultiScheduleResult reco = reco_mul_pipeline(coflows, g.delta, g.c_threshold);
    const MultiScheduleResult lp = lp_ii_gb(coflows, g.delta);
    const auto reco_w = weighted_ccts(reco, coflows);
    const auto lp_w = weighted_ccts(lp, coflows);
    t.add_row({cases[i].name, std::to_string(coflows.size()),
               fmt_ratio(normalized_ratio(lp_w, reco_w)),
               fmt_ratio(percentile(lp_w, 95) / percentile(reco_w, 95)), paper_avg[i],
               paper_p95[i]});
  }

  std::printf("Workload: %d coflows on %d ports (use --full for 526/150); delta = %s,\n"
              "c = %.0f; weights ~ U[0,1].\n\n",
              g.num_coflows, g.num_ports, fmt_time(g.delta).c_str(), g.c_threshold);
  t.print();
  std::printf("'ratio' = LP-II-GB / Reco-Mul (higher favours Reco-Mul).  Paper columns\n"
              "are converted from the quoted percentage improvements.\n");
  return 0;
}
