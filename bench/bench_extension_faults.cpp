// Extension: robustness to imperfect hardware.  Real MEMS reconfiguration
// times jitter and occasionally fail outright; a schedule's exposure is
// proportional to how many establishments it makes.  Reco-Sin's low
// reconfiguration count should therefore translate into fault *tolerance*
// relative to Solstice — this bench quantifies that.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "sim/fabric.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  GeneratorOptions g = bench::single_coflow_workload(opts);
  if (opts.ports == 0 && !opts.full) g.num_ports = 64;
  const int samples = opts.samples > 0 ? opts.samples : (opts.full ? 1 << 30 : 8);
  const auto coflows = generate_workload(g);

  struct Scenario {
    const char* name;
    sim::FaultModel faults;
  };
  const Scenario scenarios[] = {
      {"ideal", {}},
      {"jitter 25%", {.jitter_fraction = 0.25}},
      {"jitter 100%", {.jitter_fraction = 1.0}},
      {"retries 10%", {.retry_probability = 0.10}},
      {"retries 30%", {.retry_probability = 0.30}},
      {"jitter 50% + retries 20%", {.jitter_fraction = 0.5, .retry_probability = 0.2}},
  };

  ReportTable t("Extension: CCT degradation under reconfiguration faults");
  t.set_header({"fault scenario", "Reco-Sin CCT", "degrade", "Solstice CCT", "degrade",
                "Sol/Reco"});

  // Mean over a mixed sample (normal + dense carry the reconfig exposure).
  std::vector<int> picked;
  for (DensityClass cls : bench::kAllClasses) {
    for (int k : bench::sample_class(coflows, cls, samples)) picked.push_back(k);
  }

  double reco_ideal = 0.0;
  double sol_ideal = 0.0;
  for (const Scenario& sc : scenarios) {
    std::vector<double> reco_cct, sol_cct;
    for (int k : picked) {
      const Matrix& d = coflows[k].demand;
      sim::ReplayController reco_ctrl(reco_sin(d, g.delta));
      sim::ReplayController sol_ctrl(solstice(d));
      reco_cct.push_back(sim::simulate_single_coflow(reco_ctrl, d, g.delta, sc.faults).cct);
      sol_cct.push_back(sim::simulate_single_coflow(sol_ctrl, d, g.delta, sc.faults).cct);
    }
    const double reco = mean(reco_cct);
    const double sol = mean(sol_cct);
    if (sc.faults.jitter_fraction == 0.0 && sc.faults.retry_probability == 0.0) {
      reco_ideal = reco;
      sol_ideal = sol;
    }
    t.add_row({sc.name, fmt_time(reco), fmt_ratio(reco / reco_ideal), fmt_time(sol),
               fmt_ratio(sol / sol_ideal), fmt_ratio(sol / reco)});
  }

  std::printf("Workload: %d coflows on %d ports; delta = %s; %zu coflows sampled;\n"
              "event-driven fabric with seeded fault streams.\n\n",
              g.num_coflows, g.num_ports, fmt_time(g.delta).c_str(), picked.size());
  t.print();
  std::printf("Expected: both degrade, but Solstice degrades faster — its CCT carries\n"
              "~6x more establishments, so every microsecond of jitter and every retry\n"
              "lands on it ~6x as often.  The last column should widen down the table.\n");
  return 0;
}
