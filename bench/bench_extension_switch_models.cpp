// Extension: the single-coflow algorithm zoo across both switch models
// (Table III's landscape).  For each density class: Reco-Sin, Solstice,
// plain BvN and Helios-style TMS on the all-stop OCS; the same Reco-Sin
// schedule replayed on a not-all-stop OCS; and Sunflow, which is native to
// the not-all-stop model.  Everything normalized to rho + tau*delta.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/lower_bound.hpp"
#include "ocs/all_stop_executor.hpp"
#include "ocs/not_all_stop_executor.hpp"
#include "sched/bvn_baseline.hpp"
#include "sched/reco_sin.hpp"
#include "sched/rotornet.hpp"
#include "sched/solstice.hpp"
#include "sched/sunflow.hpp"
#include "sched/tms.hpp"
#include "stats/report.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace reco;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  GeneratorOptions g = bench::single_coflow_workload(opts);
  if (opts.ports == 0 && !opts.full) g.num_ports = 64;  // BvN/TMS are O(N^2) rounds
  const int samples = opts.samples > 0 ? opts.samples : (opts.full ? 1 << 30 : 8);
  const auto coflows = generate_workload(g);

  ReportTable t("Extension: switch-model zoo, CCT / lower bound (mean)");
  t.set_header({"density", "n", "Reco-Sin", "Solstice", "BvN", "TMS", "Rotor",
                "Reco-Sin NAS", "Sunflow NAS"});

  for (DensityClass cls : bench::kAllClasses) {
    const std::vector<int> picked = bench::sample_class(coflows, cls, samples);
    std::vector<double> reco, sol, bvn, tms, rotor, reco_nas, sun;
    for (int k : picked) {
      const Matrix& d = coflows[k].demand;
      const Time lb = single_coflow_lower_bound(d, g.delta);
      const CircuitSchedule reco_s = reco_sin(d, g.delta);
      reco.push_back(execute_all_stop(reco_s, d, g.delta).cct / lb);
      sol.push_back(execute_all_stop(solstice(d), d, g.delta).cct / lb);
      bvn.push_back(execute_all_stop(bvn_baseline(d), d, g.delta).cct / lb);
      tms.push_back(execute_all_stop(tms_schedule(d, g.delta), d, g.delta).cct / lb);
      rotor.push_back(execute_all_stop(rotornet_schedule(d, g.delta), d, g.delta).cct / lb);
      reco_nas.push_back(execute_not_all_stop(reco_s, d, g.delta).cct / lb);
      sun.push_back(sunflow(d, g.delta).cct / lb);
    }
    t.add_row({bench::class_name(cls), std::to_string(picked.size()), fmt_ratio(mean(reco)),
               fmt_ratio(mean(sol)), fmt_ratio(mean(bvn)), fmt_ratio(mean(tms)),
               fmt_ratio(mean(rotor)), fmt_ratio(mean(reco_nas)), fmt_ratio(mean(sun))});
  }

  std::printf("Workload: %d coflows on %d ports; delta = %s; up to %d per class.\n"
              "NAS = not-all-stop model (Sec. VI); lower bound is the all-stop\n"
              "rho + tau*delta, so NAS columns can dip toward (and Sunflow's per-pair\n"
              "setups below) the all-stop columns.\n\n",
              g.num_coflows, g.num_ports, fmt_time(g.delta).c_str(), samples);
  t.print();
  std::printf("Expected: Reco-Sin leads on the all-stop fabric; plain BvN trails badly\n"
              "on dense coflows (Theorem 1); the not-all-stop replay never loses to\n"
              "all-stop; Sunflow is competitive only because NAS hides setup costs.\n");
  return 0;
}
