#!/usr/bin/env python3
"""Validate Prometheus text exposition format (version 0.0.4).

Usage: check_prometheus.py FILE [FILE...]

Checks, per file:
  * every line is a comment (# HELP / # TYPE), blank, or a sample line
    `name{labels} value` with a legal metric name and a parseable value;
  * every sample's base name was announced by a preceding # TYPE line;
  * histogram series are complete and coherent: cumulative `_bucket`
    counts are nondecreasing in `le` order, the series ends with
    le="+Inf", and that final bucket equals `_count`;
  * at least one sample line exists (an empty exposition usually means
    the exporter was scraped before anything registered).

Exit status 0 on success; 1 with a per-line diagnosis otherwise.
"""
import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>-?(?:[0-9.]+(?:[eE][-+]?[0-9]+)?|NaN|\+Inf|-Inf))$"
)
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def base_name(name, metric_type):
    if metric_type == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
    return name


def check_file(path):
    errors = []
    declared = {}  # base metric name -> type
    buckets = {}  # histogram name -> list of (le, count)
    counts = {}  # histogram name -> _count value
    samples = 0

    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"{path}:{lineno}: malformed comment: {line!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) < 4:
                    errors.append(f"{path}:{lineno}: TYPE line missing type: {line!r}")
                    continue
                name, metric_type = parts[2], parts[3]
                if not METRIC_NAME.fullmatch(name):
                    errors.append(f"{path}:{lineno}: bad metric name {name!r}")
                if metric_type not in TYPES:
                    errors.append(f"{path}:{lineno}: bad metric type {metric_type!r}")
                declared[name] = metric_type
            continue
        m = SAMPLE.match(line)
        if not m:
            errors.append(f"{path}:{lineno}: not a valid sample line: {line!r}")
            continue
        samples += 1
        name = m.group("name")
        labels = {}
        if m.group("labels"):
            body = m.group("labels")[1:-1]
            stripped = LABEL.sub("", body).replace(",", "").strip()
            if stripped:
                errors.append(f"{path}:{lineno}: malformed labels: {line!r}")
            labels = dict(LABEL.findall(body))
        hist = None
        for base, metric_type in declared.items():
            if base_name(name, metric_type) == base:
                hist = (base, metric_type)
                break
        if hist is None:
            errors.append(f"{path}:{lineno}: sample {name!r} has no # TYPE line")
            continue
        base, metric_type = hist
        if metric_type == "histogram":
            value = float(m.group("value"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"{path}:{lineno}: _bucket without le label")
                else:
                    buckets.setdefault(base, []).append((labels["le"], value))
            elif name.endswith("_count"):
                counts[base] = value

    for base, series in sorted(buckets.items()):
        if series[-1][0] != "+Inf":
            errors.append(f"{path}: histogram {base!r} does not end with le=\"+Inf\"")
            continue
        values = [count for _, count in series]
        if any(prev > cur for prev, cur in zip(values, values[1:])):
            errors.append(f"{path}: histogram {base!r} buckets are not cumulative")
        if base in counts and values[-1] != counts[base]:
            errors.append(
                f"{path}: histogram {base!r} +Inf bucket {values[-1]} != _count {counts[base]}"
            )
    if samples == 0:
        errors.append(f"{path}: no sample lines at all")
    return errors, samples


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors, samples = check_file(path)
        if errors:
            failed = True
            for e in errors:
                print(e, file=sys.stderr)
        else:
            print(f"{path}: OK ({samples} samples)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
